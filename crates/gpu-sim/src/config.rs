//! GPU hardware configuration: caches, memory system, SM resources.

use crate::error::SimError;
use std::fmt;

/// Write policy of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// On a write hit the line is *invalidated* and the write forwarded to
    /// the next level; write misses do not allocate. This is the GPU L1
    /// data-cache policy documented by the paper (§3.2-(D)): it is what
    /// makes the "write-related" locality category unexploitable.
    WriteEvict,
    /// Write-back with write-allocate — the GPU L2 policy.
    WriteBackAllocate,
}

/// Set-index function of a cache array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IndexFn {
    /// Multiplicative (Fibonacci) hash of the line tag — the modeled
    /// hardware behavior (see [`crate::addrdec`]). Default everywhere.
    #[default]
    Hashed,
    /// Plain `tag % num_sets` indexing, the textbook scheme real GPUs
    /// avoid: power-of-two strides camp on a few sets. Exposed as a DSE
    /// axis so the sweep (and the CL3xx set-conflict analysis) can
    /// quantify what the hash buys per workload.
    Modulo,
}

impl IndexFn {
    /// The sweep-spec / config-file token (`hashed` / `modulo`).
    pub fn label(&self) -> &'static str {
        match self {
            IndexFn::Hashed => "hashed",
            IndexFn::Modulo => "modulo",
        }
    }
}

/// Geometry and policy of one cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Cache-line size in bytes. Fermi/Kepler L1: 128; Maxwell/Pascal
    /// L1/Tex and all L2: 32.
    pub line_bytes: u32,
    /// Set associativity.
    pub associativity: u32,
    /// Maximum outstanding misses (MSHR entries). Further misses stall
    /// until a fill retires.
    pub mshr_entries: u32,
    /// Write handling.
    pub write_policy: WritePolicy,
    /// Sector size in bytes; `0` (the conventional value everywhere)
    /// means unsectored — the sector is the whole line. When nonzero it
    /// must be a power of two dividing `line_bytes` into at most 32
    /// sectors (sector state is packed into per-line `u32` bitmasks).
    pub sector_bytes: u32,
    /// Aggregated-tag-array (ATA) variant: the cache keeps a compact
    /// per-set ghost array of recently evicted tags, probed on every
    /// miss *before* the data state is touched, and uses the probe to
    /// pick the insertion priority (ghost hit → MRU, ghost miss →
    /// LIP-style cold insert). Off by default; modeled architectures
    /// opt in via [`crate::arch::ata_variant`].
    pub aggregated_tags: bool,
    /// Set-index function. [`IndexFn::Hashed`] models the hardware and
    /// is the default for every preset; [`IndexFn::Modulo`] exists as a
    /// DSE axis.
    pub index_fn: IndexFn,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u32 {
        self.size_bytes / (self.line_bytes * self.associativity)
    }

    /// The effective sector size: `sector_bytes`, or the full line when
    /// unsectored (`sector_bytes == 0`).
    pub fn effective_sector_bytes(&self) -> u32 {
        if self.sector_bytes == 0 {
            self.line_bytes
        } else {
            self.sector_bytes
        }
    }

    /// Sectors per line (1 when unsectored).
    pub fn sectors_per_line(&self) -> u32 {
        self.line_bytes / self.effective_sector_bytes()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any field is zero, the line
    /// size is not a power of two, or capacity is not divisible into whole
    /// sets.
    pub fn validate(&self, what: &str) -> Result<(), SimError> {
        if self.size_bytes == 0 || self.line_bytes == 0 || self.associativity == 0 {
            return Err(SimError::InvalidConfig(format!(
                "{what}: zero-sized field in cache config"
            )));
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(SimError::InvalidConfig(format!(
                "{what}: line size {} is not a power of two",
                self.line_bytes
            )));
        }
        if !self
            .size_bytes
            .is_multiple_of(self.line_bytes * self.associativity)
        {
            return Err(SimError::InvalidConfig(format!(
                "{what}: capacity {} not divisible by {}x{}",
                self.size_bytes, self.line_bytes, self.associativity
            )));
        }
        if self.mshr_entries == 0 {
            return Err(SimError::InvalidConfig(format!(
                "{what}: zero MSHR entries"
            )));
        }
        if self.sector_bytes != 0 {
            if !self.sector_bytes.is_power_of_two()
                || !self.line_bytes.is_multiple_of(self.sector_bytes)
            {
                return Err(SimError::InvalidConfig(format!(
                    "{what}: sector size {} does not divide line size {}",
                    self.sector_bytes, self.line_bytes
                )));
            }
            if self.line_bytes / self.sector_bytes > 32 {
                return Err(SimError::InvalidConfig(format!(
                    "{what}: more than 32 sectors per line ({} / {})",
                    self.line_bytes, self.sector_bytes
                )));
            }
        }
        Ok(())
    }
}

/// Latency and bandwidth parameters of the memory hierarchy.
///
/// Latencies are round-trip cycles observed by a warp from issue to data
/// return, matching how the paper's microbenchmark (Listing 3) measures
/// them with `clock()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryTimings {
    /// L1 (or L1/Tex unified) hit latency.
    pub l1_hit: u32,
    /// Latency of a request served by the L2 (L1 miss, L2 hit).
    pub l2_hit: u32,
    /// Latency of a request served by DRAM (miss in both caches).
    pub dram: u32,
    /// Minimum cycles between two transactions serviced by one L2 bank
    /// (inverse bank throughput).
    pub l2_bank_gap: u32,
    /// Number of independent L2 banks (address-interleaved at L2-line
    /// granularity).
    pub l2_banks: u32,
    /// Minimum cycles between two DRAM transactions on one channel.
    pub dram_channel_gap: u32,
    /// Number of DRAM channels.
    pub dram_channels: u32,
}

impl MemoryTimings {
    fn validate(&self) -> Result<(), SimError> {
        if self.l2_banks == 0 || self.dram_channels == 0 {
            return Err(SimError::InvalidConfig(
                "memory timings: zero banks or channels".into(),
            ));
        }
        if !(self.l1_hit < self.l2_hit && self.l2_hit < self.dram) {
            return Err(SimError::InvalidConfig(
                "memory timings: latencies must satisfy l1 < l2 < dram".into(),
            ));
        }
        Ok(())
    }
}

/// The NVIDIA architecture generations evaluated by the paper (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArchGen {
    /// Fermi (CC 2.x): 128B-line configurable L1, static CTA→warp-slot binding.
    Fermi,
    /// Kepler (CC 3.x): 128B-line configurable L1, static CTA→warp-slot binding.
    Kepler,
    /// Maxwell (CC 5.x): 32B-line sectored L1/Tex unified cache, dynamic
    /// CTA→warp-slot binding.
    Maxwell,
    /// Pascal (CC 6.x): like Maxwell with more SMs.
    Pascal,
}

impl ArchGen {
    /// Whether CTAs bind to hardware warp slots statically (Fermi/Kepler),
    /// letting an agent derive its id from `%warpid` for free, or
    /// dynamically (Maxwell/Pascal), requiring a global atomic + shared
    /// memory broadcast (Listing 5).
    pub fn static_warp_slot_binding(&self) -> bool {
        matches!(self, ArchGen::Fermi | ArchGen::Kepler)
    }

    /// All four generations, in release order.
    pub const ALL: [ArchGen; 4] = [
        ArchGen::Fermi,
        ArchGen::Kepler,
        ArchGen::Maxwell,
        ArchGen::Pascal,
    ];
}

impl fmt::Display for ArchGen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArchGen::Fermi => "Fermi",
            ArchGen::Kepler => "Kepler",
            ArchGen::Maxwell => "Maxwell",
            ArchGen::Pascal => "Pascal",
        };
        f.write_str(s)
    }
}

/// Complete description of a simulated GPU (one row of the paper's Table 1
/// plus the timing parameters inferred from its Figure 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GpuConfig {
    /// Marketing name, e.g. `"GTX980"`.
    pub name: String,
    /// Architecture generation.
    pub arch: ArchGen,
    /// Compute capability `(major, minor)`.
    pub compute_capability: (u32, u32),
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Warp width (always 32 on NVIDIA hardware).
    pub warp_size: u32,
    /// Hardware warp slots per SM.
    pub warp_slots: u32,
    /// Hardware CTA slots per SM.
    pub cta_slots: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Shared-memory bytes per SM.
    pub smem_per_sm: u32,
    /// Per-SM L1 (or L1/Tex unified) cache.
    pub l1: CacheConfig,
    /// Number of independent L1 sectors. Maxwell/Pascal partition the
    /// unified cache into two sectors private to alternating CTA slots
    /// (paper §3.1-(1)); Fermi/Kepler have a single monolithic L1.
    pub l1_sectors: u32,
    /// Whether global loads are cached in L1 at all (compiler-selectable
    /// on real hardware; the framework's probe toggles this).
    pub l1_enabled: bool,
    /// Device-wide shared L2.
    pub l2: CacheConfig,
    /// Latency/bandwidth model.
    pub timings: MemoryTimings,
}

impl GpuConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when a structural parameter is
    /// zero, a cache geometry is inconsistent, or the L1 line is smaller
    /// than the L2 line (the paper notes L1 lines are always >= L2 lines,
    /// and the transaction accounting relies on it).
    pub fn validate(&self) -> Result<(), SimError> {
        if self.num_sms == 0 {
            return Err(SimError::InvalidConfig("zero SMs".into()));
        }
        if self.warp_size == 0 || self.warp_slots == 0 || self.cta_slots == 0 {
            return Err(SimError::InvalidConfig("zero execution resources".into()));
        }
        if self.l1_sectors == 0 || !self.l1.size_bytes.is_multiple_of(self.l1_sectors) {
            return Err(SimError::InvalidConfig(format!(
                "L1 capacity {} not divisible into {} sectors",
                self.l1.size_bytes, self.l1_sectors
            )));
        }
        self.l1.validate("L1")?;
        self.l2.validate("L2")?;
        if self.l1.line_bytes < self.l2.line_bytes {
            return Err(SimError::InvalidConfig(format!(
                "L1 line ({}) smaller than L2 line ({})",
                self.l1.line_bytes, self.l2.line_bytes
            )));
        }
        self.timings.validate()?;
        Ok(())
    }

    /// Number of L2 transactions generated by one L1 miss: the L1 fetches a
    /// whole L1 line in units of L2 lines (e.g. one 128B Fermi L1 miss is
    /// four 32B L2 read transactions — paper §3.1-(1)).
    pub fn l2_txns_per_l1_miss(&self) -> u32 {
        self.l1.line_bytes / self.l2.line_bytes
    }

    /// Returns a copy with the L1 disabled (all global loads served by L2),
    /// as the framework's cache-line probe does via compiler flags.
    pub fn with_l1_disabled(&self) -> GpuConfig {
        GpuConfig {
            l1_enabled: false,
            ..self.clone()
        }
    }

    /// Returns a copy with a different L1 capacity, modelling the
    /// configurable split between L1 and shared memory on Fermi/Kepler.
    pub fn with_l1_size(&self, size_bytes: u32) -> GpuConfig {
        let mut c = self.clone();
        c.l1.size_bytes = size_bytes;
        c
    }

    /// `cudaFuncCachePreferL1`: on the configurable architectures
    /// (Fermi/Kepler) selects the 48KB-L1 / 16KB-shared split when the
    /// kernel's shared-memory footprint permits; a no-op on Maxwell and
    /// Pascal, whose unified cache is fixed. The total L1+shared storage
    /// stays at 64KB.
    pub fn prefer_l1(&self, smem_per_cta_bytes: u32) -> GpuConfig {
        match self.arch {
            ArchGen::Fermi | ArchGen::Kepler if smem_per_cta_bytes <= 16 * 1024 => {
                let mut c = self.with_l1_size(48 * 1024);
                c.smem_per_sm = 16 * 1024;
                c
            }
            _ => self.clone(),
        }
    }
}

impl fmt::Display for GpuConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, CC {}.{}, {} SMs)",
            self.name,
            self.arch,
            self.compute_capability.0,
            self.compute_capability.1,
            self.num_sms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;

    #[test]
    fn presets_validate() {
        for cfg in arch::all_presets() {
            cfg.validate().expect("preset must validate");
        }
    }

    #[test]
    fn l2_txn_ratio_matches_paper() {
        assert_eq!(arch::gtx570().l2_txns_per_l1_miss(), 4);
        assert_eq!(arch::tesla_k40().l2_txns_per_l1_miss(), 4);
        assert_eq!(arch::gtx980().l2_txns_per_l1_miss(), 1);
        assert_eq!(arch::gtx1080().l2_txns_per_l1_miss(), 1);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = arch::gtx570();
        cfg.num_sms = 0;
        assert!(matches!(cfg.validate(), Err(SimError::InvalidConfig(_))));

        let mut cfg = arch::gtx570();
        cfg.l1.line_bytes = 16; // smaller than L2 line
        assert!(cfg.validate().is_err());

        let mut cfg = arch::gtx980();
        cfg.l1.size_bytes = 48 * 1024 + 32; // not divisible into sectors/sets
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn cache_config_set_math() {
        let c = CacheConfig {
            size_bytes: 16 * 1024,
            line_bytes: 128,
            associativity: 4,
            mshr_entries: 32,
            write_policy: WritePolicy::WriteEvict,
            sector_bytes: 0,
            aggregated_tags: false,
            index_fn: IndexFn::Hashed,
        };
        assert_eq!(c.num_sets(), 32);
        assert_eq!(c.sectors_per_line(), 1);
        assert_eq!(c.effective_sector_bytes(), 128);
        assert!(c.validate("test").is_ok());
    }

    #[test]
    fn sector_geometry_is_validated() {
        let base = CacheConfig {
            size_bytes: 16 * 1024,
            line_bytes: 128,
            associativity: 4,
            mshr_entries: 32,
            write_policy: WritePolicy::WriteEvict,
            sector_bytes: 32,
            aggregated_tags: false,
            index_fn: IndexFn::Hashed,
        };
        assert!(base.validate("test").is_ok());
        assert_eq!(base.sectors_per_line(), 4);

        let mut c = base.clone();
        c.sector_bytes = 48; // not a power of two
        assert!(c.validate("test").is_err());

        let mut c = base.clone();
        c.sector_bytes = 256; // larger than the line
        assert!(c.validate("test").is_err());

        let mut c = base;
        c.line_bytes = 4096;
        c.size_bytes = 64 * 4096;
        c.sector_bytes = 4; // 1024 sectors: exceeds the u32 mask
        assert!(c.validate("test").is_err());
    }

    #[test]
    fn static_binding_split() {
        assert!(ArchGen::Fermi.static_warp_slot_binding());
        assert!(ArchGen::Kepler.static_warp_slot_binding());
        assert!(!ArchGen::Maxwell.static_warp_slot_binding());
        assert!(!ArchGen::Pascal.static_warp_slot_binding());
    }
}
