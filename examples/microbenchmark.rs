//! The paper's Listing 3 microbenchmark (Figure 2): demonstrate that the
//! L1 can serve inter-CTA reuse both temporally (across turnarounds) and
//! spatially (across concurrent CTAs), on every architecture generation.
//!
//! Run with: `cargo run --release --example microbenchmark`

use cluster_bench::fig2;
use cta_clustering::ClusterError;

fn main() -> Result<(), ClusterError> {
    println!("Listing 3 microbenchmark: inter-CTA reuse on L1 (paper Figure 2)");
    println!();
    for cfg in gpu_sim::arch::all_presets() {
        let (default, staggered) = fig2::run_gpu(&cfg)?;
        println!(
            "{:<10} default:   {:>3}/{:<3} CTAs at L1 plateau, {:>2} slow (temporal reuse)",
            cfg.name,
            default.l1_class(),
            default.series.len(),
            default.slow_class(),
        );
        println!(
            "{:<10} staggered: {:>3}/{:<3} CTAs at L1 plateau, {:>2} slow (spatial reuse)",
            "",
            staggered.l1_class(),
            staggered.series.len(),
            staggered.slow_class(),
        );
        // Show the first turnaround's latency profile, like the figure.
        let head: Vec<String> = default
            .series
            .iter()
            .take(12)
            .map(|p| format!("{}:{}", p.cta, p.cycles))
            .collect();
        println!("{:<10} first CTAs (id:cycles): {}", "", head.join(" "));
        println!();
    }
    println!("only (part of) the first turnaround pays DRAM latency; later CTAs");
    println!("on the same SM hit in L1 — inter-CTA locality is harvestable there.");
    Ok(())
}
