//! MVT — matrix-vector product and transpose (PolyBench `mvt`):
//! `x1 += A * y1; x2 += A' * y2`.
//!
//! Both phases walk the same A panels with the row-panel pattern, so the
//! cache-line-shared fetches are touched twice per CTA. Structurally the
//! PolyBench twin of [`Atax`](crate::Atax) (identical register footprint
//! in Table 2) but with two independent vector inputs.

use crate::common::{panel_reads, read_words, write_words};
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, Dim3, KernelSpec, LaunchConfig, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "MVT",
    full_name: "mvt",
    description: "Matrix vector product and transpose",
    category: PaperCategory::CacheLine,
    warps_per_cta: 8,
    partition: PartitionHint::X,
    opt_agents: [1, 1, 1, 1],
    regs: [13, 17, 17, 22],
    smem: 0,
    source: "PolyBench",
};

const TAG_A: u16 = 0;
const TAG_Y1: u16 = 1;
const TAG_Y2: u16 = 2;
const TAG_X1: u16 = 3;
const TAG_X2: u16 = 4;

const PANEL_WORDS: u64 = 8;

/// The mvt workload model.
#[derive(Debug, Clone)]
pub struct Mvt {
    /// Row blocks (256 rows each).
    pub grid_x: u32,
    /// Column panels.
    pub grid_y: u32,
    /// Registers per thread.
    pub regs: u32,
}

impl Mvt {
    /// Default evaluation-scale instance for `arch`.
    pub fn for_arch(arch: ArchGen) -> Self {
        Mvt {
            grid_x: 4,
            grid_y: 32,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance.
    pub fn new(grid_x: u32, grid_y: u32) -> Self {
        Mvt {
            grid_x,
            grid_y,
            regs: INFO.regs[0],
        }
    }

    fn row_words(&self) -> u64 {
        self.grid_y as u64 * PANEL_WORDS
    }
}

impl KernelSpec for Mvt {
    fn name(&self) -> String {
        format!("MVT({}x{})", self.grid_x, self.grid_y)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::plane(self.grid_x, self.grid_y), 256u32)
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let (bx, by, _) = self.launch().grid.coords_row_major(ctx.cta);
        let row0 = bx as u64 * 256 + warp as u64 * 32;
        let col0 = by as u64 * PANEL_WORDS;
        let mut prog = Program::new();
        // Phase 1: x1 += A * y1.
        prog.push(read_words(TAG_Y1, col0, PANEL_WORDS as u32));
        prog.extend(panel_reads(
            TAG_A,
            row0,
            self.row_words(),
            col0,
            PANEL_WORDS,
            32,
        ));
        prog.push(Op::Compute(6));
        prog.push(write_words(TAG_X1, row0, 32));
        prog.push(Op::Barrier);
        // Phase 2: x2 += A' * y2 over the same panel.
        prog.push(read_words(TAG_Y2, row0 / 8, PANEL_WORDS as u32));
        prog.extend(panel_reads(
            TAG_A,
            row0,
            self.row_words(),
            col0,
            PANEL_WORDS,
            32,
        ));
        prog.push(Op::Compute(6));
        if warp == 0 {
            prog.push(write_words(
                TAG_X2,
                (bx as u64 * self.grid_y as u64 + by as u64) * PANEL_WORDS,
                PANEL_WORDS as u32,
            ));
        } else {
            prog.push(Op::Compute(1));
        }
        prog
    }
}

impl Workload for Mvt {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        }
    }

    #[test]
    fn a_panel_walked_twice() {
        let m = Mvt::new(2, 4);
        let n = m
            .warp_program(&ctx(0), 0)
            .iter()
            .filter(|op| op.access().map(|a| a.tag == TAG_A).unwrap_or(false))
            .count();
        assert_eq!(n, 2 * PANEL_WORDS as usize);
    }

    #[test]
    fn intra_cta_panel_reuse_exists() {
        // The second phase re-reads the same words as the first: the
        // reuse the L1 can capture even without clustering.
        let m = Mvt::new(2, 4);
        let p = m.warp_program(&ctx(0), 0);
        let words: Vec<u64> = p
            .iter()
            .filter_map(|op| op.access())
            .filter(|a| a.tag == TAG_A)
            .flat_map(|a| a.addrs.clone())
            .collect();
        let unique: std::collections::BTreeSet<_> = words.iter().collect();
        assert_eq!(words.len(), unique.len() * 2);
    }

    #[test]
    fn regs_match_atax_twin() {
        assert_eq!(INFO.regs, [13, 17, 17, 22]);
        assert_eq!(Mvt::for_arch(ArchGen::Pascal).regs, 22);
    }
}
