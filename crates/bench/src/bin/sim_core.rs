//! Benchmarks the simulator core itself: wall-clock over the Figure 12
//! request matrix, engine event accounting, and program-cache
//! effectiveness, emitted as a single JSON document (`sim-core-bench/v1`)
//! on stdout.
//!
//! Every run is checked against the engine's conservation laws
//! (issues == instructions, one dispatch poll per CTA retirement, ...);
//! any violation is reported on stderr and the process exits nonzero, so
//! CI can gate on it.
//!
//! Usage:
//!   sim_core [--reduced] [--arch ata] [--profile] [--check <path>] [--before <seconds>] [--out <path>]
//!
//! `--reduced` runs a small Fermi-only subset (the CI smoke matrix).
//! `--arch ata` appends the aggregated-tag-array sweep: every Table 2
//! app simulated under the stock Maxwell preset and its ATA variant,
//! with both L1 and L2 hit rates in an `ata` JSON section.
//! `--profile` prints a deterministic per-run work-model table on
//! stderr: coalescer shape-path hits, tag-scan chunks, victim-scan
//! ways, set conflicts and heap pushes for every (arch, app, request).
//! The counters are exact event counts, not wall-clock samples, so two
//! runs of the same matrix produce byte-identical tables — this is the
//! profiler the speed work is aimed with.
//! `--check` compares the fresh run against a committed
//! `BENCH_sim_core.json` (run count, conservation violations, skip
//! ratio, and the exact `work_model` counters) and exits nonzero on
//! regression — the CI perf-smoke gate.
//! `--before` overrides the committed pre-rework baseline wall time the
//! speedup is normalized against (full matrix, 1 thread).
//! `--out` additionally writes the JSON to a file.

use cluster_bench::matrix::{drive_matrix, MatrixTotals};
use cta_clustering::ClusterError;
use gpu_sim::GpuConfig;
use std::time::Instant;

/// Largest skip-ratio drop tolerated by `--check` before it fails: the
/// ratio is a structural property of the event-driven engine (fraction
/// of cycles never stepped), deterministic for a fixed matrix, so any
/// real movement beyond rounding noise means the engine regressed into
/// cycle-stepping behavior.
const SKIP_RATIO_TOLERANCE: f64 = 0.02;

/// Wall-clock of the full request matrix at 1 thread on the cycle-stepped
/// engine this bin's rework replaced (commit 2ceca1b, `fig12_speedup`).
const BASELINE_COMMIT: &str = "2ceca1b";
const BASELINE_WALL_S: f64 = 188.4;

fn main() -> Result<(), ClusterError> {
    cluster_bench::tune_allocator();
    let mut reduced = false;
    let mut verbose = false;
    let mut ata_sweep = false;
    let mut profile = false;
    let mut before = BASELINE_WALL_S;
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reduced" => reduced = true,
            "--verbose" => verbose = true,
            "--profile" => profile = true,
            "--arch" => {
                let v = args
                    .next()
                    .ok_or_else(|| ClusterError::harness("--arch needs a value"))?;
                match v.as_str() {
                    "ata" => ata_sweep = true,
                    other => {
                        return Err(ClusterError::harness(format!(
                            "unknown --arch {other:?}; the only modeled variant is \"ata\""
                        )))
                    }
                }
            }
            "--check" => {
                check_path = Some(
                    args.next()
                        .ok_or_else(|| ClusterError::harness("--check needs a path"))?,
                );
            }
            "--before" => {
                let v = args
                    .next()
                    .ok_or_else(|| ClusterError::harness("--before needs a value"))?;
                before = v
                    .parse()
                    .map_err(|e| ClusterError::harness(format!("--before {v:?}: {e}")))?;
            }
            "--out" => {
                out_path = Some(
                    args.next()
                        .ok_or_else(|| ClusterError::harness("--out needs a path"))?,
                );
            }
            other => {
                return Err(ClusterError::harness(format!(
                    "unknown argument {other:?}; usage: \
                     sim_core [--reduced] [--verbose] [--arch ata] [--profile] \
                     [--check <path>] [--before <s>] [--out <path>]"
                )))
            }
        }
    }

    let configs: Vec<GpuConfig> = if reduced {
        vec![gpu_sim::arch::gtx570()]
    } else {
        gpu_sim::arch::all_presets().to_vec()
    };

    let t0 = Instant::now();
    let mut totals = MatrixTotals::default();
    // The matrix enumeration itself lives in `cluster_bench::matrix` so
    // the costmodel soundness gate (`analyze --verify-costmodel`) checks
    // exactly the runs this bin commits; this bin only observes.
    let ata = drive_matrix(
        &configs,
        reduced,
        ata_sweep,
        &mut totals,
        &mut |plan, req, _stats, metrics, elapsed| {
            if verbose {
                eprintln!(
                    "{}/{}/{}: {:.0}ms ({} issues)",
                    plan.cfg.name,
                    plan.info.abbr,
                    req.label(),
                    elapsed.as_secs_f64() * 1e3,
                    metrics.issues,
                );
            }
            if profile {
                let w = &metrics.work;
                eprintln!(
                    "profile {}/{}/{}: coalesce {} (contig {} sorted {} div {}) \
                     l1 chunks {} victims {} conflicts {} \
                     l2 chunks {} victims {} conflicts {} \
                     heaps ready {} sm {}",
                    plan.cfg.name,
                    plan.info.abbr,
                    req.label(),
                    w.coalesce_calls,
                    w.coalesce_contiguous,
                    w.coalesce_sorted,
                    w.coalesce_divergent,
                    w.l1.tag_chunks,
                    w.l1.victim_ways,
                    w.l1.set_conflicts,
                    w.l2.tag_chunks,
                    w.l2.victim_ways,
                    w.l2.set_conflicts,
                    w.ready_heap_pushes,
                    w.sm_heap_pushes,
                );
            }
        },
    )?;
    let ata_json = match &ata {
        Some(sweep) => {
            let rows: Vec<String> = sweep
                .rows
                .iter()
                .map(|r| {
                    format!(
                        "{{\"abbr\": \"{}\", \"l1_base\": {:.4}, \"l1_ata\": {:.4}, \
                         \"l2_base\": {:.4}, \"l2_ata\": {:.4}}}",
                        r.abbr, r.l1_base, r.l1_ata, r.l2_base, r.l2_ata,
                    )
                })
                .collect();
            format!(
                "{{\n    \"base_arch\": \"{}\",\n    \"ata_arch\": \"{}\",\n    \"apps\": [\n      {}\n    ],\n    \"l1_improved\": {},\n    \"apps_total\": {},\n    \"mean_l1_delta\": {:.4}\n  }}",
                sweep.base_arch,
                sweep.ata_arch,
                rows.join(",\n      "),
                sweep.improved,
                sweep.rows.len(),
                sweep.mean_l1_delta,
            )
        }
        None => "null".to_string(),
    };
    let wall_s = t0.elapsed().as_secs_f64();

    let (runs, violations) = (totals.runs, totals.violations);
    let (cache_hits, cache_fills) = (totals.cache_hits, totals.cache_fills);
    let total = &totals.engine;
    let skip_ratio = totals.skip_ratio();
    let hit_rate = totals.cache_hit_rate();
    let baseline = if reduced {
        "null".to_string()
    } else {
        format!(
            "{{\"commit\": \"{BASELINE_COMMIT}\", \"wall_s\": {BASELINE_WALL_S}, \"speedup\": {:.2}}}",
            before / wall_s
        )
    };
    let work = &total.work;
    let json = format!(
        "{{\n  \"format\": \"sim-core-bench/v1\",\n  \"mode\": \"{mode}\",\n  \"runs\": {runs},\n  \"wall_s\": {wall_s:.2},\n  \"baseline\": {baseline},\n  \"conservation_violations\": {violations},\n  \"engine\": {{\n    \"events\": {events},\n    \"issues\": {issues},\n    \"cycles_skipped\": {skipped},\n    \"skip_ratio\": {skip_ratio:.4},\n    \"warps_dispatched\": {warps},\n    \"warp_retires\": {warp_retires},\n    \"cta_retires\": {cta_retires},\n    \"dispatch_polls\": {polls}\n  }},\n  \"work_model\": {{\n    \"coalesce_calls\": {co_calls},\n    \"coalesce_contiguous\": {co_contig},\n    \"coalesce_sorted\": {co_sorted},\n    \"coalesce_divergent\": {co_div},\n    \"l1_tag_chunks\": {l1_chunks},\n    \"l1_victim_ways\": {l1_victims},\n    \"l1_set_conflicts\": {l1_conflicts},\n    \"l2_tag_chunks\": {l2_chunks},\n    \"l2_victim_ways\": {l2_victims},\n    \"l2_set_conflicts\": {l2_conflicts},\n    \"ready_heap_pushes\": {ready_pushes},\n    \"sm_heap_pushes\": {sm_pushes}\n  }},\n  \"program_cache\": {{\n    \"hits\": {cache_hits},\n    \"fills\": {cache_fills},\n    \"hit_rate\": {hit_rate:.4}\n  }},\n  \"ata\": {ata_json}\n}}",
        mode = if reduced { "reduced" } else { "full" },
        events = total.events,
        issues = total.issues,
        skipped = total.cycles_skipped,
        warps = total.warps_dispatched,
        warp_retires = total.warp_retires,
        cta_retires = total.cta_retires,
        polls = total.dispatch_polls,
        co_calls = work.coalesce_calls,
        co_contig = work.coalesce_contiguous,
        co_sorted = work.coalesce_sorted,
        co_div = work.coalesce_divergent,
        l1_chunks = work.l1.tag_chunks,
        l1_victims = work.l1.victim_ways,
        l1_conflicts = work.l1.set_conflicts,
        l2_chunks = work.l2.tag_chunks,
        l2_victims = work.l2.victim_ways,
        l2_conflicts = work.l2.set_conflicts,
        ready_pushes = work.ready_heap_pushes,
        sm_pushes = work.sm_heap_pushes,
    );
    println!("{json}");
    if let Some(path) = out_path {
        std::fs::write(&path, format!("{json}\n"))
            .map_err(|e| ClusterError::harness(format!("writing {path}: {e}")))?;
    }
    let mut check_failed = false;
    if let Some(path) = &check_path {
        let committed = std::fs::read_to_string(path)
            .map_err(|e| ClusterError::harness(format!("reading {path}: {e}")))?;
        check_failed = !diff_against_committed(
            &committed,
            path,
            if reduced { "reduced" } else { "full" },
            runs,
            violations,
            skip_ratio,
            work,
        )?;
    }
    if violations > 0 {
        eprintln!("sim_core: {violations} conservation violation(s)");
        std::process::exit(1);
    }
    if check_failed {
        std::process::exit(1);
    }
    Ok(())
}

/// Compares the fresh run against a committed `sim-core-bench/v1`
/// document and reports each criterion on stderr. Returns `false` (and
/// logs `FAIL` lines) on any regression:
///
/// * the committed artifact itself must be violation-free and of the
///   same mode — otherwise the comparison is meaningless;
/// * the fresh run count must equal the committed one (the matrix
///   changed without regenerating the artifact);
/// * the fresh run must have zero conservation violations;
/// * the skip ratio may not drop more than [`SKIP_RATIO_TOLERANCE`]
///   below the committed value (the engine regressed toward
///   cycle-stepping);
/// * every `work_model` counter must match the committed value
///   *exactly* — the matrix is deterministic, so the counters are too,
///   and any drift means the coalescer, cache probe/victim scans or
///   event heaps are doing different work than the committed baseline.
///   This is the regression gate wall-clock is too noisy to provide.
///
/// Wall-clock is deliberately *not* gated: CI machines vary too much
/// for a hard threshold; the skip ratio and the exact work-model
/// counters are the portable proxies.
#[allow(clippy::too_many_arguments)]
fn diff_against_committed(
    committed: &str,
    path: &str,
    mode: &str,
    runs: u64,
    violations: u64,
    skip_ratio: f64,
    work: &gpu_sim::WorkModel,
) -> Result<bool, ClusterError> {
    let field = |key: &str| {
        json_number(committed, key)
            .ok_or_else(|| ClusterError::harness(format!("{path}: missing \"{key}\"")))
    };
    let committed_mode = json_string(committed, "mode")
        .ok_or_else(|| ClusterError::harness(format!("{path}: missing \"mode\"")))?;
    let committed_runs = field("runs")? as u64;
    let committed_violations = field("conservation_violations")? as u64;
    let committed_skip = field("skip_ratio")?;
    let mut ok = true;
    let mut report = |pass: bool, msg: String| {
        eprintln!(
            "sim_core --check: {} {msg}",
            if pass { "PASS" } else { "FAIL" }
        );
        ok &= pass;
    };
    report(
        committed_violations == 0,
        format!("committed artifact violation-free (has {committed_violations})"),
    );
    report(
        committed_mode == mode,
        format!("mode matches committed ({committed_mode:?} vs fresh {mode:?})"),
    );
    report(
        runs == committed_runs,
        format!("run count {runs} == committed {committed_runs}"),
    );
    report(
        violations == 0,
        format!("fresh violations == 0 (got {violations})"),
    );
    report(
        skip_ratio >= committed_skip - SKIP_RATIO_TOLERANCE,
        format!(
            "skip ratio {skip_ratio:.4} within {SKIP_RATIO_TOLERANCE} of committed {committed_skip:.4}"
        ),
    );
    // Work-model counters: deterministic event counts, pinned exactly.
    let fresh = [
        ("coalesce_calls", work.coalesce_calls),
        ("coalesce_contiguous", work.coalesce_contiguous),
        ("coalesce_sorted", work.coalesce_sorted),
        ("coalesce_divergent", work.coalesce_divergent),
        ("l1_tag_chunks", work.l1.tag_chunks),
        ("l1_victim_ways", work.l1.victim_ways),
        ("l1_set_conflicts", work.l1.set_conflicts),
        ("l2_tag_chunks", work.l2.tag_chunks),
        ("l2_victim_ways", work.l2.victim_ways),
        ("l2_set_conflicts", work.l2.set_conflicts),
        ("ready_heap_pushes", work.ready_heap_pushes),
        ("sm_heap_pushes", work.sm_heap_pushes),
    ];
    for (key, value) in fresh {
        let pinned = field(key)? as u64;
        report(
            value == pinned,
            format!("work_model {key} {value} == committed {pinned}"),
        );
    }
    report(
        work.check_conservation().is_ok(),
        format!(
            "work_model conservation laws hold ({})",
            work.check_conservation().err().unwrap_or("ok")
        ),
    );
    Ok(ok)
}

/// First numeric value following `"key":` in a flat JSON document.
/// Enough for the self-emitted `sim-core-bench/v1` format; not a general
/// JSON parser (the workspace deliberately has no serde dependency).
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = doc[doc.find(&pat)? + pat.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// First string value following `"key":` in a flat JSON document.
fn json_string(doc: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let rest = doc[doc.find(&pat)? + pat.len()..]
        .trim_start()
        .strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}
