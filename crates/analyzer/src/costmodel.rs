//! Pass family 5: the `CL2xx` static performance verifier.
//!
//! Where `CL0xx` proves functional invariants and `CL1xx` proves
//! protocol liveness, this family proves *performance* facts: it runs
//! the [`locality::AccessSummary`] abstract interpretation over the
//! walked warp-program IR and derives a sound hit-rate interval
//! `[lo, hi]` for the kernel on a concrete cache geometry. Lints fire
//! when the model proves a configuration degenerate:
//!
//! * [`WORKING_SET_THRASHES`] (CL201) — reuse exists, but the sound
//!   *upper* bound on the hit rate is near zero: the working set
//!   provably thrashes this geometry and resizing within the sweep
//!   cannot help.
//! * [`CLUSTERING_MISS_INVARIANT`] (CL202) — every cacheable read
//!   touches a distinct line, so the miss count is a program invariant:
//!   no clustering transform (which only reorders CTAs) can change it.
//! * [`OCCUPANCY_BOUND_GEOMETRY_IRRELEVANT`] (CL203) — the kernel
//!   presents no cacheable reads at all; L1 geometry is provably
//!   irrelevant and only occupancy/latency effects remain.
//! * [`COSTMODEL_UNSOUND`] (CL204) — the machine-checked soundness
//!   obligation itself: a simulator-measured hit rate escaped the
//!   interval (emitted by the `analyze --verify-costmodel` gate, never
//!   by the static pass).
//!
//! The thrash threshold is deliberately conservative: CL201 only fires
//! when the *upper* bound — which no scheduler, MSHR configuration or
//! eviction accident can beat — is below [`THRASH_HI`], on kernels with
//! at least [`MIN_READS`] read transactions.

use crate::diag::{
    Report, CLUSTERING_MISS_INVARIANT, COSTMODEL_UNSOUND, OCCUPANCY_BOUND_GEOMETRY_IRRELEVANT,
    WORKING_SET_THRASHES,
};
use gpu_sim::{GpuConfig, KernelSpec};
use locality::{AccessSummary, HitInterval};

/// CL201 fires only when the sound upper bound is below this.
pub const THRASH_HI: f64 = 0.05;

/// CL201/CL202 fire only at or above this many read transactions —
/// micro-kernels with a handful of reads are not "thrashing".
pub const MIN_READS: u64 = 256;

/// The cost model's verdict on one kernel at one geometry.
#[derive(Debug, Clone)]
pub struct CostVerdict {
    /// Sound hit-rate interval at the queried geometry.
    pub interval: HitInterval,
    /// Cacheable read transactions (== the simulator's `l1.reads`).
    pub reads: u64,
    /// Distinct lines named by cacheable reads.
    pub read_working_set: u64,
    /// Mean LRU stack distance of the read stream, if any reuse exists.
    pub mean_distance: Option<f64>,
}

/// Runs the abstract interpretation over `kernel` and appends any CL2xx
/// findings for the geometry in `cfg`, returning the verdict so callers
/// (the DSE harness, the plan audit) can consume the interval directly.
pub fn check_kernel<K: KernelSpec + ?Sized>(
    kernel: &K,
    cfg: &GpuConfig,
    subject: &str,
    report: &mut Report,
) -> CostVerdict {
    let summary = AccessSummary::collect_on(kernel, cfg);
    check_summary(&summary, cfg, subject, report)
}

/// [`check_kernel`] over an already-collected summary (one walk can
/// serve many geometries as long as the L1 line size matches).
pub fn check_summary(
    summary: &AccessSummary,
    cfg: &GpuConfig,
    subject: &str,
    report: &mut Report,
) -> CostVerdict {
    report.note_subject();
    let iv = summary.hit_interval(cfg);
    if summary.geometry_irrelevant() && summary.mem_ops() > 0 {
        report.emit(
            &OCCUPANCY_BOUND_GEOMETRY_IRRELEVANT,
            subject,
            format!(
                "{} memory ops but 0 cacheable read transactions \
                 ({} bypassed, {} stores, {} atomics): any L1 sweep point is wasted",
                summary.mem_ops(),
                summary.bypassed_reads(),
                summary.stores(),
                summary.atomics()
            ),
        );
    } else if summary.reads() >= MIN_READS {
        if summary.all_reads_cold(cfg.l1.write_policy) {
            report.emit(
                &CLUSTERING_MISS_INVARIANT,
                subject,
                format!(
                    "all {} read transactions touch distinct lines: \
                     miss count is invariant under any CTA reordering",
                    summary.reads()
                ),
            );
        } else if iv.hi < THRASH_HI {
            report.emit(
                &WORKING_SET_THRASHES,
                subject,
                format!(
                    "hit rate provably <= {:.4}: compulsory misses dominate \
                     ({} reads over {} distinct lines) — no L1 geometry in a \
                     sweep can recover this kernel",
                    iv.hi,
                    summary.reads(),
                    summary.read_working_set(),
                ),
            );
        }
    }
    CostVerdict {
        reads: iv.reads,
        read_working_set: summary.read_working_set(),
        mean_distance: summary.mean_distance(),
        interval: iv,
    }
}

/// The soundness obligation: checks one simulator measurement against
/// the statically derived interval, emitting CL204 on any escape.
///
/// Two separate facts are checked — the modeled transaction count must
/// equal the measured one (the streams must agree before the rates are
/// even comparable), and the measured rate must lie inside `[lo, hi]`.
/// Returns `true` when both hold.
pub fn check_measured(
    iv: &HitInterval,
    measured_reads: u64,
    measured_rate: f64,
    subject: &str,
    report: &mut Report,
) -> bool {
    report.note_subject();
    if iv.reads != measured_reads {
        report.emit(
            &COSTMODEL_UNSOUND,
            subject,
            format!(
                "modeled {} read transactions, simulator measured {}",
                iv.reads, measured_reads
            ),
        );
        return false;
    }
    if !iv.contains(measured_rate) {
        report.emit(
            &COSTMODEL_UNSOUND,
            subject,
            format!(
                "measured hit rate {:.6} outside [{:.6}, {:.6}]",
                measured_rate, iv.lo, iv.hi
            ),
        );
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{arch, CtaContext, Dim3, LaunchConfig, MemAccess, Op, Program};

    /// Streams `ctas * reps` distinct lines, one load per line.
    #[derive(Debug)]
    struct Streamer {
        ctas: u32,
        reps: u64,
    }

    impl KernelSpec for Streamer {
        fn name(&self) -> String {
            "streamer".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::linear(self.ctas), 32u32)
        }
        fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
            (0..self.reps)
                .map(|r| {
                    let base = (ctx.cta * self.reps + r) * 128;
                    Op::Load(MemAccess::coalesced(0, base, 32, 4))
                })
                .collect()
        }
    }

    /// Almost pure streaming with a trickle of far-apart reuse: the
    /// compulsory-miss bound pins the hit rate near zero, but reuse
    /// exists so CL202 does not apply.
    #[derive(Debug)]
    struct Thrasher;

    impl KernelSpec for Thrasher {
        fn name(&self) -> String {
            "thrasher".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::linear(4), 32u32)
        }
        fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
            (0..512u64)
                .map(|r| {
                    let line = if r % 128 == 0 { 0 } else { ctx.cta * 512 + r };
                    Op::Load(MemAccess::coalesced(0, line * 128, 32, 4))
                })
                .collect()
        }
    }

    /// Stores and atomics only — zero cacheable reads.
    #[derive(Debug)]
    struct WriteOnly;

    impl KernelSpec for WriteOnly {
        fn name(&self) -> String {
            "write-only".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::linear(2), 32u32)
        }
        fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
            vec![
                Op::Store(MemAccess::coalesced(0, ctx.cta * 128, 32, 4)),
                Op::Atomic(MemAccess::scalar(1, 0, 4)),
            ]
        }
    }

    fn codes(report: &Report) -> Vec<&'static str> {
        report.diagnostics().iter().map(|d| d.code).collect()
    }

    #[test]
    fn streaming_kernel_fires_cl202() {
        let cfg = arch::gtx570();
        let mut r = Report::new();
        let v = check_kernel(&Streamer { ctas: 16, reps: 32 }, &cfg, "t/stream", &mut r);
        assert_eq!(codes(&r), vec!["CL202"]);
        assert_eq!(v.interval.hi, 0.0);
        assert_eq!(v.reads, 16 * 32);
    }

    #[test]
    fn thrashing_kernel_fires_cl201() {
        let cfg = arch::gtx570();
        let mut r = Report::new();
        let v = check_kernel(&Thrasher, &cfg, "t/thrash", &mut r);
        assert_eq!(codes(&r), vec!["CL201"]);
        assert!(v.interval.hi > 0.0, "reuse exists, CL202 must not apply");
        assert!(v.interval.hi < THRASH_HI);
        assert!(v.mean_distance.unwrap() > 4.0);
    }

    #[test]
    fn write_only_kernel_fires_cl203() {
        let cfg = arch::gtx570();
        let mut r = Report::new();
        let v = check_kernel(&WriteOnly, &cfg, "t/wo", &mut r);
        assert_eq!(codes(&r), vec!["CL203"]);
        assert_eq!(v.reads, 0);
        assert_eq!(v.interval.hi, 0.0);
    }

    #[test]
    fn small_kernels_stay_quiet() {
        let cfg = arch::gtx570();
        let mut r = Report::new();
        // 8 CTAs x 4 reps = 32 reads < MIN_READS: cold, but not lint-worthy.
        check_kernel(&Streamer { ctas: 8, reps: 4 }, &cfg, "t/small", &mut r);
        assert!(codes(&r).is_empty(), "{}", r.render_human());
    }

    #[test]
    fn measured_escape_fires_cl204() {
        let cfg = arch::gtx570();
        let summary = locality::AccessSummary::collect_on(&Streamer { ctas: 16, reps: 32 }, &cfg);
        let iv = summary.hit_interval(&cfg);
        let mut r = Report::new();
        assert!(check_measured(&iv, iv.reads, iv.hi, "t/ok", &mut r));
        assert!(!check_measured(&iv, iv.reads, 0.5, "t/rate", &mut r));
        assert!(!check_measured(&iv, iv.reads + 1, 0.0, "t/txns", &mut r));
        assert_eq!(codes(&r), vec!["CL204", "CL204"]);
        assert_eq!(r.deny_count(), 2);
    }
}
