//! Property-based tests (proptest) on the core invariants: partition
//! bijectivity, balance, coalescer correctness, reuse-distance equivalence
//! with a naive reference, and occupancy monotonicity.

use cta_clustering::{Indexing, Partition};
use gpu_sim::{coalesce_lines, occupancy, Dim3, LaunchConfig, MemAccess};
use locality::ReuseDistance;
use proptest::prelude::*;

proptest! {
    /// f and f^-1 are mutual inverses for every indexing and geometry.
    #[test]
    fn partition_assign_invert_bijection(
        gx in 1u32..40,
        gy in 1u32..40,
        m in 1u64..64,
        mode in 0u8..3,
        tx in 1u32..6,
        ty in 1u32..6,
    ) {
        let grid = Dim3::plane(gx, gy);
        let indexing = match mode {
            0 => Indexing::RowMajor,
            1 => Indexing::ColMajor,
            _ => Indexing::Tile { tile_x: tx, tile_y: ty },
        };
        let p = Partition::new(grid, m, indexing).unwrap();
        for v in 0..grid.count() {
            let (w, i) = p.assign(v);
            prop_assert!(i < m);
            prop_assert!(w < p.cluster_size(i));
            prop_assert_eq!(p.invert(w, i), v);
        }
    }

    /// Cluster sizes are balanced within one and sum to the grid.
    #[test]
    fn partition_balance(gx in 1u32..64, gy in 1u32..32, m in 1u64..64) {
        let grid = Dim3::plane(gx, gy);
        let p = Partition::y(grid, m).unwrap();
        let sizes: Vec<u64> = (0..m).map(|i| p.cluster_size(i)).collect();
        prop_assert_eq!(sizes.iter().sum::<u64>(), grid.count());
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1, "sizes {:?}", sizes);
    }

    /// Every cluster member maps back to the cluster that lists it.
    #[test]
    fn partition_cluster_listing_consistent(gx in 1u32..20, gy in 1u32..20, m in 1u64..20) {
        let grid = Dim3::plane(gx, gy);
        let p = Partition::x(grid, m).unwrap();
        for i in 0..m {
            for (w, v) in p.cluster(i).into_iter().enumerate() {
                prop_assert_eq!(p.assign(v), (w as u64, i));
            }
        }
    }

    /// The coalescer covers every accessed byte and emits distinct lines.
    #[test]
    fn coalescer_covers_all_lanes(
        base in 0u64..100_000,
        lanes in 1u32..32,
        stride in 0u64..512,
        bytes in prop::sample::select(vec![4u32, 8]),
        line in prop::sample::select(vec![32u32, 128]),
    ) {
        let acc = MemAccess::strided(0, base, lanes, stride, bytes);
        let lines = coalesce_lines(&acc, line);
        // Distinctness.
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), lines.len());
        // Coverage: every accessed byte falls inside an emitted line.
        for &addr in &acc.addrs {
            for b in [addr, addr + bytes as u64 - 1] {
                let l = b & !(line as u64 - 1);
                prop_assert!(lines.contains(&l), "byte {b} line {l} missing");
            }
        }
        // Never more lines than touched bytes require.
        prop_assert!(lines.len() <= (lanes as usize) * 2);
    }

    /// The Fenwick-based reuse distance equals a naive LRU-stack reference.
    #[test]
    fn reuse_distance_matches_naive(seq in prop::collection::vec(0u64..24, 1..200)) {
        let mut rd = ReuseDistance::new();
        let mut stack: Vec<u64> = Vec::new();
        for &line in &seq {
            let expected = stack.iter().position(|&l| l == line).map(|p| p as u64);
            if let Some(p) = expected {
                stack.remove(p as usize);
            }
            stack.insert(0, line);
            prop_assert_eq!(rd.access(line), expected);
        }
    }

    /// More resources never reduce occupancy; fewer never increase it.
    #[test]
    fn occupancy_monotone_in_registers(regs in 1u32..64, threads in prop::sample::select(vec![32u32, 64, 128, 256])) {
        let cfg = gpu_sim::arch::gtx570();
        let l1 = LaunchConfig::new(8u32, threads).with_regs(regs);
        let l2 = LaunchConfig::new(8u32, threads).with_regs(regs + 1);
        let o1 = occupancy(&cfg, &l1);
        let o2 = occupancy(&cfg, &l2);
        match (o1, o2) {
            (Ok(a), Ok(b)) => prop_assert!(a.ctas_per_sm >= b.ctas_per_sm),
            (Err(_), Ok(_)) => prop_assert!(false, "more regs cannot fix an unschedulable kernel"),
            _ => {}
        }
    }

    /// Dim3 row-major linearization round-trips for arbitrary coordinates.
    #[test]
    fn dim3_round_trip(
        (gx, x) in (1u32..51).prop_flat_map(|g| (Just(g), 0..g)),
        (gy, y) in (1u32..51).prop_flat_map(|g| (Just(g), 0..g)),
        (gz, z) in (1u32..5).prop_flat_map(|g| (Just(g), 0..g)),
    ) {
        let d = Dim3::new(gx, gy, gz);
        let lin = d.linear_row_major(x, y, z);
        prop_assert_eq!(d.coords_row_major(lin), (x, y, z));
    }
}
