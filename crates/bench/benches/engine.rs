//! Criterion benchmarks of end-to-end simulation throughput: how fast
//! the discrete-event engine runs representative workload shapes, and
//! the relative cost of the GigaThread scheduler models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_kernels::{BlackScholes, Kmeans, MatrixMul};
use gpu_sim::{arch, KernelSpec, Simulation};

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);

    let mm = MatrixMul::new(4, 4, 4);
    let kmn = Kmeans::new(60, 32, 4);
    let bs = BlackScholes::new(60, 2);
    let kernels: Vec<(&str, &dyn KernelSpec)> = vec![
        ("matrix_mul_4x4x4", &mm),
        ("kmeans_60", &kmn),
        ("blackscholes_60", &bs),
    ];
    for (name, kernel) in kernels {
        group.bench_with_input(BenchmarkId::from_parameter(name), &kernel, |b, k| {
            b.iter(|| Simulation::new(arch::tesla_k40(), *k).run().unwrap())
        });
    }
    group.finish();
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_models");
    group.sample_size(10);
    let kmn = Kmeans::new(60, 32, 4);
    for name in ["strict-rr", "hardware-like", "randomized"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, &n| {
            b.iter(|| {
                let sched: Box<dyn gpu_sim::sched::CtaScheduler> = match n {
                    "strict-rr" => Box::new(gpu_sim::sched::StrictRoundRobin::new()),
                    "hardware-like" => Box::new(gpu_sim::sched::HardwareLike::new(7)),
                    _ => Box::new(gpu_sim::sched::Randomized::new(7)),
                };
                Simulation::new(arch::gtx570(), &kmn)
                    .with_scheduler(sched)
                    .run()
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workloads, bench_schedulers);
criterion_main!(benches);
