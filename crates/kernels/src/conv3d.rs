//! 3CV — 3D convolution (CUDA SDK).
//!
//! CTAs tile an XY plane and walk the Z dimension, loading halo-expanded
//! rows whose starts are one word *before* the tile boundary. The
//! misaligned row segments straddle 128-byte lines into the neighbouring
//! CTA's territory — mostly line-granularity sharing, clustered by
//! Y-partitioning.

use crate::common::{read_words, write_words};
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, Dim3, KernelSpec, LaunchConfig, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "3CV",
    full_name: "3DCONV",
    description: "3D convolution",
    category: PaperCategory::CacheLine,
    warps_per_cta: 8,
    partition: PartitionHint::Y,
    opt_agents: [6, 8, 8, 8],
    regs: [18, 9, 18, 19],
    smem: 0,
    source: "CUDA SDK",
};

const TAG_IN: u16 = 0;
const TAG_OUT: u16 = 1;

/// The 3D-convolution workload model.
#[derive(Debug, Clone)]
pub struct Conv3d {
    /// CTA tiles along X (32 words each).
    pub grid_x: u32,
    /// CTA tiles along Y (8 rows each).
    pub grid_y: u32,
    /// Z planes each CTA processes.
    pub depth: u32,
    /// Registers per thread.
    pub regs: u32,
}

impl Conv3d {
    /// Default evaluation-scale instance for `arch`.
    pub fn for_arch(arch: ArchGen) -> Self {
        Conv3d {
            grid_x: 8,
            grid_y: 48,
            depth: 3,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance.
    pub fn new(grid_x: u32, grid_y: u32, depth: u32) -> Self {
        Conv3d {
            grid_x,
            grid_y,
            depth,
            regs: INFO.regs[0],
        }
    }

    fn row_words(&self) -> u64 {
        self.grid_x as u64 * 32 + 2
    }

    fn plane_words(&self) -> u64 {
        self.row_words() * (self.grid_y as u64 * 8 + 2)
    }
}

impl KernelSpec for Conv3d {
    fn name(&self) -> String {
        format!("3CV({}x{},d{})", self.grid_x, self.grid_y, self.depth)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::plane(self.grid_x, self.grid_y), 256u32)
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let (bx, by, _) = self.launch().grid.coords_row_major(ctx.cta);
        let mut prog = Program::new();
        for z in 0..self.depth as u64 {
            // Warp w loads row w (plus the z-halo neighbours handled by
            // the plane loop). Row start is bx*32 - 1: misaligned by one
            // word, straddling into the left neighbour's line.
            let row = by as u64 * 8 + warp as u64;
            let col = (bx as u64 * 32).saturating_sub(1);
            let word = z * self.plane_words() + row * self.row_words() + col;
            prog.push(read_words(TAG_IN, word, 32));
            prog.push(read_words(TAG_IN, word + 32, 2));
            prog.push(Op::Compute(14));
        }
        prog.push(Op::Barrier);
        let row = by as u64 * 8 + warp as u64;
        prog.push(write_words(
            TAG_OUT,
            row * self.row_words() + bx as u64 * 32,
            32,
        ));
        prog
    }
}

impl Workload for Conv3d {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::coalesce_lines;

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        }
    }

    fn in_lines(c: &Conv3d, cta: u64, line: u32) -> std::collections::BTreeSet<u64> {
        (0..8)
            .flat_map(|w| c.warp_program(&ctx(cta), w))
            .filter_map(|op| op.access().cloned())
            .filter(|a| a.tag == TAG_IN)
            .flat_map(|a| coalesce_lines(&a, line))
            .collect()
    }

    #[test]
    fn misaligned_rows_share_lines_with_bx_neighbour() {
        let c = Conv3d::new(4, 2, 1);
        let shared = in_lines(&c, 0, 128)
            .intersection(&in_lines(&c, 1, 128))
            .count();
        assert!(shared > 0);
    }

    #[test]
    fn word_overlap_is_tiny() {
        let c = Conv3d::new(4, 2, 1);
        let words = |cta: u64| {
            (0..8)
                .flat_map(|w| c.warp_program(&ctx(cta), w))
                .filter_map(|op| op.access().cloned())
                .filter(|a| a.tag == TAG_IN)
                .flat_map(|a| a.addrs)
                .collect::<std::collections::BTreeSet<_>>()
        };
        let w0 = words(0);
        let overlap = w0.intersection(&words(1)).count();
        // Only the 3-word halo fringe per row overlaps.
        assert!(overlap > 0 && overlap < w0.len() / 8, "overlap={overlap}");
    }

    #[test]
    fn depth_scales_traffic() {
        let c1 = Conv3d::new(2, 2, 1);
        let c4 = Conv3d::new(2, 2, 4);
        let loads = |c: &Conv3d| {
            c.warp_program(&ctx(0), 0)
                .iter()
                .filter(|op| matches!(op, Op::Load(_)))
                .count()
        };
        assert_eq!(loads(&c4), 4 * loads(&c1));
    }
}
