//! The automatic optimization framework of the paper's Figure 11: probe a
//! suite of kernels, classify each one's locality source, and apply the
//! matching transform stack — clustering + throttling + bypassing for
//! exploitable locality, order-reshaping + prefetching otherwise.
//!
//! Run with: `cargo run --release --example auto_framework`

use cta_clustering::Framework;
use gpu_kernels::suite;
use gpu_sim::{arch, ArchGen, KernelSpec, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = arch::tesla_k40();
    let fw = Framework::new(cfg.clone());
    println!("automatic inter-CTA locality framework on {}", cfg.name);
    println!();
    println!(
        "{:<5} {:<12} {:<5} {:<12} {:>8} {:>9} {:>8}",
        "app", "category", "axis", "exploitable", "agents", "speedup", "L2"
    );

    for abbr in ["NN", "SYK", "KMN", "BS", "NW", "HST"] {
        let workload = suite::by_abbr(abbr, ArchGen::Kepler).expect("known app");
        let kernel = cluster_bench::SharedKernel::new(workload);
        let cfg_k = cfg.prefer_l1(kernel.launch().smem_per_cta);
        let fw = Framework::new(cfg_k.clone());
        let baseline = Simulation::new(cfg_k.clone(), &kernel).run()?;

        let analysis = fw.analyze(&kernel)?;
        let mut plan = fw.plan(&analysis);
        if plan.exploit_locality {
            plan.active_agents = Some(fw.tune_throttle(&kernel, &plan)?);
        }
        let optimized = fw.apply(kernel.clone(), &plan)?;
        let stats = Simulation::new(cfg_k.clone(), &optimized).run()?;

        println!(
            "{:<5} {:<12} {:<5} {:<12} {:>8} {:>8.2}x {:>7.0}%",
            abbr,
            analysis.category.to_string(),
            plan.axis.to_string(),
            plan.exploit_locality,
            plan.active_agents
                .map_or("max".to_string(), |a| a.to_string()),
            stats.speedup_vs(&baseline),
            100.0 * stats.l2_txns_vs(&baseline),
        );
    }
    let _ = fw;
    println!();
    println!("exploitable categories (algorithm, cache-line) are clustered for");
    println!("locality; the rest only get the reshaped order + prefetching.");
    Ok(())
}
