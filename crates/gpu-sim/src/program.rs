//! Warp-program representation for the engine: owned op vectors for
//! ordinary kernels, shared (reference-counted) segments for kernels
//! that replay cached programs.
//!
//! The clustering transforms launch the *same* original-CTA programs
//! over and over — once per variant, and (for agents) concatenated many
//! tasks deep. [`WarpProgram::Segmented`] lets a kernel hand the engine
//! a sequence of `Arc<[Op]>` slices instead of a freshly generated
//! `Vec<Op>`, so the variant matrix materializes each original program
//! once and replays it everywhere. The engine only ever walks programs
//! strictly forward, one op per issue, so segment traversal is a cursor
//! (`(segment, offset)` advanced in step with the warp's `pc`), not
//! random access.

use crate::kernel::Op;
use std::sync::Arc;

/// Backing storage of one program segment.
#[derive(Debug, Clone)]
enum SegOps {
    /// A slice of a shared, immutable program (zero-copy replay).
    Shared(Arc<[Op]>),
    /// Ops owned by this program alone (prologues, inserted prefetches).
    Inline(Box<[Op]>),
}

/// A contiguous run of ops: `ops[start..end]`.
#[derive(Debug, Clone)]
pub(crate) struct Segment {
    ops: SegOps,
    start: u32,
    end: u32,
}

impl Segment {
    #[inline]
    pub(crate) fn len(&self) -> u32 {
        self.end - self.start
    }

    #[inline]
    fn op(&self, off: u32) -> &Op {
        let idx = (self.start + off) as usize;
        match &self.ops {
            SegOps::Shared(ops) => &ops[idx],
            SegOps::Inline(ops) => &ops[idx],
        }
    }
}

/// Position of the next op in a [`WarpProgram`], advanced alongside the
/// warp's `pc`. For owned programs only `off` is meaningful.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Cursor {
    pub seg: u32,
    pub off: u32,
}

/// One warp's instruction stream, as the engine executes it.
#[derive(Debug)]
pub(crate) enum WarpProgram {
    /// A plain generated program (the pre-cache path; buffer recycled
    /// through the runner's program pool on retirement).
    Owned(Vec<Op>),
    /// A sequence of segments over shared and inline storage. Segments
    /// are never empty (the builder drops empty runs).
    Segmented { parts: Box<[Segment]>, len: u32 },
}

impl WarpProgram {
    #[inline]
    pub(crate) fn len(&self) -> usize {
        match self {
            WarpProgram::Owned(v) => v.len(),
            WarpProgram::Segmented { len, .. } => *len as usize,
        }
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The op under `cur`. Callers must not read past the end
    /// (`pc < len()` is the engine's guard, as it was for `Vec` indexing).
    #[inline]
    pub(crate) fn op_at(&self, cur: Cursor) -> &Op {
        match self {
            WarpProgram::Owned(v) => &v[cur.off as usize],
            WarpProgram::Segmented { parts, .. } => parts[cur.seg as usize].op(cur.off),
        }
    }

    /// The cursor one op past `cur`.
    #[inline]
    pub(crate) fn advance(&self, cur: Cursor) -> Cursor {
        match self {
            WarpProgram::Owned(_) => Cursor {
                seg: 0,
                off: cur.off + 1,
            },
            WarpProgram::Segmented { parts, .. } => {
                let mut seg = cur.seg;
                let mut off = cur.off + 1;
                while (seg as usize) < parts.len() && off >= parts[seg as usize].len() {
                    seg += 1;
                    off = 0;
                }
                Cursor { seg, off }
            }
        }
    }

    /// Recycles the owned buffer (if any) into `pool` for the next
    /// dispatch; shared segments just drop their refcounts.
    pub(crate) fn recycle(self, pool: &mut Vec<Vec<Op>>) {
        if let WarpProgram::Owned(mut v) = self {
            v.clear();
            pool.push(v);
        }
    }
}

/// Builder handed to [`crate::KernelSpec::warp_program_build`]: kernels
/// append owned ops and/or shared program slices in execution order.
///
/// Kernels that only implement the legacy generation path never see
/// shared segments; their ops accumulate into one recycled buffer and
/// the result is exactly the pre-segment `Vec<Op>` program.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    pending: Vec<Op>,
    parts: Vec<Segment>,
    len: u32,
}

impl ProgramBuilder {
    /// A builder whose inline buffer reuses `buf`'s allocation.
    pub(crate) fn with_buffer(mut buf: Vec<Op>) -> Self {
        buf.clear();
        ProgramBuilder {
            pending: buf,
            parts: Vec::new(),
            len: 0,
        }
    }

    /// Appends one owned op.
    #[inline]
    pub fn push(&mut self, op: Op) {
        self.pending.push(op);
    }

    /// Appends a whole shared program.
    pub fn push_shared(&mut self, ops: &Arc<[Op]>) {
        self.push_shared_range(ops, 0, ops.len());
    }

    /// Appends `ops[start..end]` of a shared program. Empty ranges are
    /// dropped (segments are never empty).
    pub fn push_shared_range(&mut self, ops: &Arc<[Op]>, start: usize, end: usize) {
        debug_assert!(start <= end && end <= ops.len());
        if start >= end {
            return;
        }
        self.flush_pending();
        self.len += (end - start) as u32;
        self.parts.push(Segment {
            ops: SegOps::Shared(Arc::clone(ops)),
            start: start as u32,
            end: end as u32,
        });
    }

    /// The inline op buffer, for legacy `warp_program_into`-style
    /// generation. Only meaningful while no shared segment has been
    /// pushed; the default [`crate::KernelSpec::warp_program_build`]
    /// writes the whole program through this.
    pub fn inline_ops(&mut self) -> &mut Vec<Op> {
        debug_assert!(
            self.parts.is_empty(),
            "inline_ops is the whole-program legacy bridge"
        );
        &mut self.pending
    }

    fn flush_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let end = self.pending.len() as u32;
        self.len += end;
        let inline: Box<[Op]> = self.pending.drain(..).collect();
        self.parts.push(Segment {
            ops: SegOps::Inline(inline),
            start: 0,
            end,
        });
    }

    /// Materializes the built program into a flat op vector, in execution
    /// order. Test and analysis helper: the engine consumes the segmented
    /// form directly and never flattens.
    pub fn into_ops(self) -> Vec<Op> {
        let (prog, _) = self.finish();
        let mut out = Vec::with_capacity(prog.len());
        let mut cur = Cursor::default();
        for _ in 0..prog.len() {
            out.push(prog.op_at(cur).clone());
            cur = prog.advance(cur);
        }
        out
    }

    /// Finalizes the program. Returns the program plus the leftover
    /// inline buffer (for the runner's pool) when the program does not
    /// own it.
    pub(crate) fn finish(mut self) -> (WarpProgram, Option<Vec<Op>>) {
        if self.parts.is_empty() {
            return (WarpProgram::Owned(self.pending), None);
        }
        self.flush_pending();
        (
            WarpProgram::Segmented {
                parts: self.parts.into_boxed_slice(),
                len: self.len,
            },
            Some(self.pending),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::MemAccess;

    fn op(n: u64) -> Op {
        Op::Load(MemAccess::scalar(0, n, 4))
    }

    fn materialize(p: &WarpProgram) -> Vec<Op> {
        let mut out = Vec::new();
        let mut cur = Cursor::default();
        for _ in 0..p.len() {
            out.push(p.op_at(cur).clone());
            cur = p.advance(cur);
        }
        out
    }

    #[test]
    fn owned_program_round_trips() {
        let b = ProgramBuilder::with_buffer(vec![op(9)]);
        // with_buffer clears the recycled allocation.
        let (prog, spare) = {
            let mut b = b;
            b.push(op(1));
            b.push(op(2));
            b.finish()
        };
        assert!(spare.is_none());
        assert_eq!(prog.len(), 2);
        assert_eq!(materialize(&prog), vec![op(1), op(2)]);
        let mut pool = Vec::new();
        prog.recycle(&mut pool);
        assert_eq!(pool.len(), 1);
        assert!(pool[0].is_empty());
    }

    #[test]
    fn segments_interleave_inline_and_shared_in_order() {
        let shared: Arc<[Op]> = vec![op(10), op(11), op(12)].into();
        let mut b = ProgramBuilder::default();
        b.push(op(1));
        b.push_shared_range(&shared, 0, 2);
        b.push(op(2));
        b.push(op(3));
        b.push_shared_range(&shared, 2, 3);
        b.push_shared_range(&shared, 1, 1); // empty: dropped
        let (prog, spare) = b.finish();
        assert!(spare.is_some());
        assert_eq!(prog.len(), 6);
        assert_eq!(
            materialize(&prog),
            vec![op(1), op(10), op(11), op(2), op(3), op(12)]
        );
    }

    #[test]
    fn empty_builder_yields_empty_owned() {
        let (prog, spare) = ProgramBuilder::default().finish();
        assert!(prog.is_empty());
        assert!(spare.is_none());
        let mut pool = Vec::new();
        prog.recycle(&mut pool);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn whole_shared_program_is_zero_copy() {
        let shared: Arc<[Op]> = vec![op(5), op(6)].into();
        let mut b = ProgramBuilder::default();
        b.push_shared(&shared);
        let (prog, _) = b.finish();
        assert_eq!(materialize(&prog), vec![op(5), op(6)]);
        assert_eq!(Arc::strong_count(&shared), 2);
        drop(prog);
        assert_eq!(Arc::strong_count(&shared), 1);
    }
}
