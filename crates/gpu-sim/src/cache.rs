//! Set-associative cache model with LRU replacement, MSHR-style
//! outstanding-fill tracking and *hit-reserved* semantics.
//!
//! The paper's Figure 2 shows that in the first turnaround only one CTA per
//! SM actually fetches from DRAM; its siblings *hit reserved*: they match a
//! line whose fill is still in flight and wait for it. This model
//! reproduces that by timestamping fills.
//!
//! The line array is stored structure-of-arrays — parallel `tags`, `lru`,
//! `fill_done` and `dirty` slabs indexed `set * associativity + way` — so
//! the tag-match scan on the engine's hottest path walks one dense `u64`
//! row per lookup instead of striding over four-field structs. Validity
//! is folded into the tag slab ([`INVALID_TAG`]), which is unreachable as
//! a real tag because tags are addresses divided by the line size.

use crate::config::{CacheConfig, WritePolicy};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-level counters, updated on every access.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read transactions presented to this level.
    pub reads: u64,
    /// Reads that hit a fully-arrived line.
    pub read_hits: u64,
    /// Reads that hit a line whose fill was still in flight (counted as
    /// hits for hit-rate purposes, but latency extends to the fill).
    pub read_reserved: u64,
    /// Reads that missed and allocated.
    pub read_misses: u64,
    /// Write transactions presented to this level.
    pub writes: u64,
    /// Writes that hit (write-back levels only).
    pub write_hits: u64,
    /// Writes that missed.
    pub write_misses: u64,
    /// Lines invalidated by the write-evict policy.
    pub write_evictions: u64,
    /// Valid lines replaced by an allocating miss (capacity/conflict
    /// evictions; dirty or clean).
    pub evictions: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Misses that stalled for a free MSHR entry.
    pub mshr_stalls: u64,
    /// Total cycles spent in MSHR structural stalls.
    pub mshr_wait_cycles: u64,
}

impl CacheStats {
    /// Read hit rate counting reserved hits as hits (profiler convention).
    pub fn read_hit_rate(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        (self.read_hits + self.read_reserved) as f64 / self.reads as f64
    }

    /// Merge another stats block into this one.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.reads += other.reads;
        self.read_hits += other.read_hits;
        self.read_reserved += other.read_reserved;
        self.read_misses += other.read_misses;
        self.writes += other.writes;
        self.write_hits += other.write_hits;
        self.write_misses += other.write_misses;
        self.write_evictions += other.write_evictions;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.mshr_stalls += other.mshr_stalls;
        self.mshr_wait_cycles += other.mshr_wait_cycles;
    }
}

/// Result of presenting a read to a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Data present and arrived.
    Hit,
    /// Line allocated but fill still in flight; data usable at `ready_at`.
    HitReserved {
        /// Absolute cycle at which the in-flight fill completes.
        ready_at: u64,
    },
    /// Not present. The caller must fetch from the next level and then
    /// call [`Cache::fill`].
    Miss {
        /// Extra cycles the request waited for a free MSHR before it could
        /// even be sent downstream (0 when MSHRs were available).
        mshr_wait: u64,
        /// Whether a dirty victim was evicted (write-back levels: the
        /// caller must account a writeback transaction).
        dirty_victim: bool,
    },
}

/// Result of presenting a write to a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Write-evict level: the line (if present) was invalidated and the
    /// write must be forwarded downstream.
    Forwarded {
        /// Whether a matching line was evicted (cross-CTA write-related
        /// locality destruction, paper Fig. 4-(D)).
        evicted: bool,
    },
    /// Write-back level: absorbed by a present line (marked dirty).
    Absorbed,
    /// Write-back level: write-allocate fetched the line; the caller must
    /// account a read from the next level and call [`Cache::fill`].
    AllocateMiss {
        /// Whether a dirty victim was evicted.
        dirty_victim: bool,
    },
}

/// Tag-slab sentinel marking an invalid way. Unreachable as a real tag:
/// tags are `line_addr / line_bytes` with `line_bytes >= 32`, so real
/// tags never exceed `u64::MAX / 32`.
const INVALID_TAG: u64 = u64::MAX;

/// A single set-associative cache array (one L1 sector, or one L2 bank).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    num_sets: u64,
    /// `num_sets - 1`, valid only when `pow2_sets`.
    set_mask: u64,
    pow2_sets: bool,
    /// `log2(line_bytes)` — validated power-of-two, so the per-access
    /// tag extraction is a shift, not a division.
    line_shift: u32,
    assoc: usize,
    /// Per-way tags; [`INVALID_TAG`] marks an empty way.
    tags: Box<[u64]>,
    /// Per-way last-touch ticks. Invalidation (write-evict) keeps the
    /// stamp, so a recently-invalidated way is a *worse* victim than a
    /// never-used one — matching LRU over `(valid, lru)` pairs.
    lru: Box<[u64]>,
    /// Per-way fill-completion cycle; `u64::MAX` while the miss that
    /// allocated the way has not been [`Cache::fill`]ed yet.
    fill_done: Box<[u64]>,
    /// Per-way dirty bits (write-back levels).
    dirty: Box<[bool]>,
    tick: u64,
    /// Completion times of outstanding fills (MSHR occupancy), min-first.
    /// Pruned lazily: retired entries linger until a miss actually finds
    /// the heap at capacity, which is the only moment occupancy matters.
    inflight: BinaryHeap<Reverse<u64>>,
    /// Observable counters.
    pub stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not validate; construct configs through
    /// [`CacheConfig::validate`]-checked paths.
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate("cache").expect("valid cache config");
        let num_sets = cfg.num_sets() as u64;
        let assoc = cfg.associativity as usize;
        let lines = (num_sets as usize) * assoc;
        Cache {
            num_sets,
            set_mask: num_sets - 1,
            pow2_sets: num_sets.is_power_of_two(),
            line_shift: cfg.line_bytes.trailing_zeros(),
            assoc,
            tags: vec![INVALID_TAG; lines].into_boxed_slice(),
            lru: vec![0; lines].into_boxed_slice(),
            fill_done: vec![0; lines].into_boxed_slice(),
            dirty: vec![false; lines].into_boxed_slice(),
            cfg,
            tick: 0,
            inflight: BinaryHeap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Set index of a line, using multiplicative (Fibonacci) hashing as a
    /// model of the address swizzling in real GPU L1/L2 arrays. Plain
    /// modulo indexing collapses the power-of-two row strides that
    /// dense-matrix kernels produce onto a handful of sets; NVIDIA
    /// hardware hashes higher address bits into the index to avoid
    /// exactly that pathology. Power-of-two set counts (every preset
    /// geometry) reduce the final modulo to a mask.
    #[inline]
    pub fn set_index(&self, line_addr: u64) -> u64 {
        self.set_of_tag(self.tag_of(line_addr))
    }

    /// The tag (line number) of a line address.
    #[inline]
    fn tag_of(&self, line_addr: u64) -> u64 {
        line_addr >> self.line_shift
    }

    /// Set index for an already-extracted tag.
    #[inline]
    fn set_of_tag(&self, tag: u64) -> u64 {
        if self.num_sets == 1 {
            return 0;
        }
        let h = tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        if self.pow2_sets {
            h & self.set_mask
        } else {
            h % self.num_sets
        }
    }

    /// First slab index of the set holding the line with `tag`.
    #[inline]
    fn base_of_tag(&self, tag: u64) -> usize {
        self.set_of_tag(tag) as usize * self.assoc
    }

    /// Way holding `tag` within the set at `base`, if resident. A tag
    /// match implies validity ([`INVALID_TAG`] never equals a real tag).
    #[inline]
    fn find(&self, base: usize, tag: u64) -> Option<usize> {
        self.tags[base..base + self.assoc]
            .iter()
            .position(|&t| t == tag)
            .map(|way| base + way)
    }

    fn prune_inflight(&mut self, now: u64) {
        while let Some(&Reverse(t)) = self.inflight.peek() {
            if t > now {
                break;
            }
            self.inflight.pop();
        }
    }

    /// Admits a miss to the MSHRs, returning the structural-stall wait.
    /// Retired fills are only pruned when the heap is nominally at
    /// capacity: an under-capacity heap admits immediately whether or not
    /// stale entries linger, so the outcomes are identical to eager
    /// pruning.
    fn mshr_admit(&mut self, now: u64) -> u64 {
        let cap = self.cfg.mshr_entries as usize;
        if self.inflight.len() >= cap {
            self.prune_inflight(now);
        }
        if self.inflight.len() < cap {
            return 0;
        }
        // Structural stall: the request waits for the earliest
        // in-flight fill to retire and reuses its entry. The entry is
        // popped (it has completed by the time the request proceeds),
        // and the wait is bounded by one fill horizon so a burst of
        // same-cycle misses shares the stall rather than chaining it
        // (real hardware replays the instruction, it does not build an
        // unbounded queue in front of the MSHRs).
        let Reverse(earliest) = self.inflight.pop().expect("nonempty inflight");
        // Drain everything that retires alongside it.
        while let Some(&Reverse(t)) = self.inflight.peek() {
            if t > earliest {
                break;
            }
            self.inflight.pop();
        }
        let wait = earliest.saturating_sub(now);
        self.stats.mshr_stalls += 1;
        self.stats.mshr_wait_cycles += wait;
        wait
    }

    /// Presents a read of the line containing `line_addr` (already
    /// line-aligned by the coalescer).
    pub fn read(&mut self, line_addr: u64, now: u64) -> ReadOutcome {
        self.stats.reads += 1;
        self.tick += 1;
        let tick = self.tick;
        let tag = self.tag_of(line_addr);
        let base = self.base_of_tag(tag);
        if let Some(i) = self.find(base, tag) {
            self.lru[i] = tick;
            if self.fill_done[i] > now {
                self.stats.read_reserved += 1;
                return ReadOutcome::HitReserved {
                    ready_at: self.fill_done[i],
                };
            }
            self.stats.read_hits += 1;
            return ReadOutcome::Hit;
        }
        // Miss: check MSHR availability, then pick a victim.
        self.stats.read_misses += 1;
        let mshr_wait = self.mshr_admit(now);
        let (_, dirty_victim) = self.install(base, tag, tick);
        ReadOutcome::Miss {
            mshr_wait,
            dirty_victim,
        }
    }

    /// Installs `tag` into the set at `base`, returning the claimed slab
    /// index and whether a dirty line was evicted. The victim is the
    /// first way minimizing `(valid, lru)` — empty ways first (oldest
    /// stamp winning), then true LRU.
    fn install(&mut self, base: usize, tag: u64, tick: u64) -> (usize, bool) {
        let mut victim = base;
        let mut best = (self.tags[base] != INVALID_TAG, self.lru[base]);
        if best != (false, 0) {
            for i in base + 1..base + self.assoc {
                let key = (self.tags[i] != INVALID_TAG, self.lru[i]);
                if key < best {
                    best = key;
                    victim = i;
                    if key == (false, 0) {
                        // Nothing ranks below a never-used way, and ties
                        // keep the first: this is the victim.
                        break;
                    }
                }
            }
        }
        let was_valid = self.tags[victim] != INVALID_TAG;
        let dirty_victim = was_valid && self.dirty[victim];
        if was_valid {
            self.stats.evictions += 1;
        }
        if dirty_victim {
            self.stats.writebacks += 1;
        }
        self.tags[victim] = tag;
        self.dirty[victim] = false;
        self.lru[victim] = tick;
        self.fill_done[victim] = u64::MAX; // in flight until `fill` is called
        (victim, dirty_victim)
    }

    /// Completes the fill started by a previous `Miss`, making the line's
    /// data available at absolute cycle `ready_at`.
    pub fn fill(&mut self, line_addr: u64, ready_at: u64) {
        let tag = self.tag_of(line_addr);
        let base = self.base_of_tag(tag);
        if let Some(i) = self.find(base, tag) {
            self.fill_done[i] = ready_at;
        }
        self.inflight.push(Reverse(ready_at));
    }

    /// Presents a write of the line containing `line_addr`.
    pub fn write(&mut self, line_addr: u64, _now: u64) -> WriteOutcome {
        self.stats.writes += 1;
        self.tick += 1;
        let tick = self.tick;
        let tag = self.tag_of(line_addr);
        let base = self.base_of_tag(tag);
        match self.cfg.write_policy {
            WritePolicy::WriteEvict => {
                let evicted = if let Some(i) = self.find(base, tag) {
                    // Invalidate but keep the LRU stamp: the way ranks
                    // behind never-used ways for the next victim choice.
                    self.tags[i] = INVALID_TAG;
                    self.stats.write_evictions += 1;
                    true
                } else {
                    false
                };
                WriteOutcome::Forwarded { evicted }
            }
            WritePolicy::WriteBackAllocate => {
                if let Some(i) = self.find(base, tag) {
                    self.dirty[i] = true;
                    self.lru[i] = tick;
                    self.stats.write_hits += 1;
                    // In-flight lines absorb the write too; the merge
                    // happens when the fill arrives.
                    return WriteOutcome::Absorbed;
                }
                self.stats.write_misses += 1;
                let (i, dirty_victim) = self.install(base, tag, tick);
                // Mark dirty immediately: the allocate fetch is accounted by
                // the caller, after which the line holds the merged write.
                self.dirty[i] = true;
                WriteOutcome::AllocateMiss { dirty_victim }
            }
        }
    }

    /// Whether the line is currently resident with arrived data (test and
    /// probe helper; does not touch LRU state or statistics).
    pub fn probe(&self, line_addr: u64, now: u64) -> bool {
        let tag = self.tag_of(line_addr);
        let base = self.base_of_tag(tag);
        self.find(base, tag)
            .is_some_and(|i| self.fill_done[i] <= now)
    }

    /// Invalidates all contents and outstanding fills; statistics are kept.
    pub fn flush(&mut self) {
        self.tags.fill(INVALID_TAG);
        self.lru.fill(0);
        self.fill_done.fill(0);
        self.dirty.fill(false);
        self.inflight.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(policy: WritePolicy) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 1024, // 8 sets x 2 ways x 64B... actually 4 sets below
            line_bytes: 128,
            associativity: 2,
            mshr_entries: 2,
            write_policy: policy,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small(WritePolicy::WriteEvict);
        assert!(matches!(c.read(0, 0), ReadOutcome::Miss { .. }));
        c.fill(0, 100);
        // Before the fill arrives: hit-reserved.
        assert_eq!(c.read(0, 50), ReadOutcome::HitReserved { ready_at: 100 });
        // After: plain hit.
        assert_eq!(c.read(0, 200), ReadOutcome::Hit);
        assert_eq!(c.stats.read_hits, 1);
        assert_eq!(c.stats.read_reserved, 1);
        assert_eq!(c.stats.read_misses, 1);
    }

    /// First three line addresses colliding with line 0's set.
    fn colliding(c: &Cache, n: usize) -> Vec<u64> {
        let target = c.set_index(0);
        (1u64..)
            .map(|i| i * 128)
            .filter(|&a| c.set_index(a) == target)
            .take(n)
            .collect()
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small(WritePolicy::WriteEvict);
        let peers = colliding(&c, 2);
        c.read(0, 0);
        c.fill(0, 0);
        for &a in &peers {
            assert!(matches!(c.read(a, 1), ReadOutcome::Miss { .. }));
            c.fill(a, 1);
        }
        // Line 0 was LRU in a 2-way set and must be gone; peers remain.
        assert!(!c.probe(0, 10));
        assert!(c.probe(peers[0], 10));
        assert!(c.probe(peers[1], 10));
        // Only the replacement of line 0 displaced valid data.
        assert_eq!(c.stats.evictions, 1);
    }

    #[test]
    fn hashing_spreads_power_of_two_strides() {
        // 256 lines at a 1KB stride (the dense-matrix row stride that
        // collapses onto 4 sets under modulo indexing) must spread over
        // every set under XOR hashing.
        let c = Cache::new(CacheConfig {
            size_bytes: 16 * 1024,
            line_bytes: 128,
            associativity: 4,
            mshr_entries: 32,
            write_policy: WritePolicy::WriteEvict,
        });
        let mut sets = std::collections::BTreeSet::new();
        for r in 0..256u64 {
            sets.insert(c.set_index(r * 1024));
        }
        assert!(sets.len() >= 16, "only {} sets used", sets.len());
    }

    #[test]
    fn masked_set_index_matches_modulo() {
        // Every preset geometry has power-of-two sets, so the hot path
        // uses the mask; it must agree with the generic modulo on a dense
        // address sweep.
        let c = small(WritePolicy::WriteEvict);
        assert!(c.pow2_sets);
        for a in (0..4096u64).map(|i| i * 128) {
            let ln = a / c.cfg.line_bytes as u64;
            let h = ln.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
            assert_eq!(c.set_index(a), h % c.num_sets);
            assert!(c.set_index(a) < c.num_sets);
        }
    }

    #[test]
    fn write_evict_invalidates() {
        let mut c = small(WritePolicy::WriteEvict);
        c.read(0, 0);
        c.fill(0, 0);
        assert!(c.probe(0, 1));
        assert_eq!(c.write(0, 1), WriteOutcome::Forwarded { evicted: true });
        assert!(!c.probe(0, 2));
        // Write to an absent line forwards without eviction.
        assert_eq!(c.write(4096, 2), WriteOutcome::Forwarded { evicted: false });
        assert_eq!(c.stats.write_evictions, 1);
    }

    #[test]
    fn invalidated_way_ranks_behind_untouched_ways() {
        // After a write-evict invalidation, the way keeps its LRU stamp:
        // the next install in that set must prefer a never-used way (lru
        // 0) over the freshly-invalidated one.
        let mut c = small(WritePolicy::WriteEvict);
        c.read(0, 0); // occupies one way of set(0)
        c.fill(0, 0);
        c.write(0, 1); // invalidates it, keeping its stamp
        let peer = colliding(&c, 1)[0];
        c.read(peer, 2); // installs into the *other* (never-used) way
        c.fill(peer, 2);
        c.read(0, 3); // refetch line 0: must not displace the peer
        c.fill(0, 3);
        assert!(c.probe(peer, 10));
        assert!(c.probe(0, 10));
        assert_eq!(c.stats.evictions, 0);
    }

    #[test]
    fn write_back_allocates_and_writes_back() {
        let mut c = small(WritePolicy::WriteBackAllocate);
        let peers = colliding(&c, 2);
        assert!(matches!(c.write(0, 0), WriteOutcome::AllocateMiss { .. }));
        c.fill(0, 0);
        assert_eq!(c.write(0, 1), WriteOutcome::Absorbed);
        // Evicting the dirty line reports a dirty victim.
        for (i, &a) in peers.iter().enumerate() {
            match c.read(a, 2) {
                ReadOutcome::Miss { dirty_victim, .. } if i == 1 => assert!(dirty_victim),
                ReadOutcome::Miss { .. } => {}
                other => panic!("unexpected {other:?}"),
            }
            c.fill(a, 2);
        }
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn mshr_saturation_delays() {
        let mut c = small(WritePolicy::WriteEvict);
        // Two fills in flight (mshr_entries = 2).
        c.read(0, 0);
        c.fill(0, 500);
        c.read(128, 0);
        c.fill(128, 600);
        // Third distinct miss at t=10 must wait for the earliest fill (500).
        match c.read(256, 10) {
            ReadOutcome::Miss { mshr_wait, .. } => assert_eq!(mshr_wait, 490),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lazy_inflight_pruning_matches_eager() {
        let mut c = small(WritePolicy::WriteEvict);
        // Two fills that retire early; a later miss at capacity must see
        // them as retired (pruned on demand) and pay no stall.
        c.read(0, 0);
        c.fill(0, 5);
        c.read(128, 0);
        c.fill(128, 6);
        match c.read(256, 100) {
            ReadOutcome::Miss { mshr_wait, .. } => assert_eq!(mshr_wait, 0),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.stats.mshr_stalls, 0);
    }

    #[test]
    fn flush_clears_contents_not_stats() {
        let mut c = small(WritePolicy::WriteEvict);
        c.read(0, 0);
        c.fill(0, 0);
        c.flush();
        assert!(!c.probe(0, 1));
        assert_eq!(c.stats.read_misses, 1);
    }

    #[test]
    fn hit_rate_counts_reserved() {
        let mut c = small(WritePolicy::WriteEvict);
        c.read(0, 0);
        c.fill(0, 100);
        c.read(0, 10);
        c.read(0, 200);
        assert!((c.stats.read_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
