//! Agent-based clustering (paper §4.2.4-(2), Listing 5, Figure 10), plus
//! its complementary optimizations: CTA throttling (§4.3-(I)) and CTA
//! prefetching over the reshaped order (§4.3-(III)).
//!
//! Instead of tricking the GigaThread engine, this transform circumvents
//! it: the new kernel launches `SMs x MAX_AGENTS` persistent CTAs
//! ("agents"). Each agent reads the physical SM id it landed on (`%smid`
//! — [`CtaContext::sm_id`] in the simulator), binds that SM's cluster,
//! determines its agent id — from the hardware warp slot on static-binding
//! architectures (Fermi/Kepler), or by a global atomic ticket plus
//! shared-memory broadcast on dynamic-binding ones (Maxwell/Pascal, which
//! costs real cycles) — and then serially executes every task `(w, i)` of
//! its cluster with `w ≡ agent_id (mod ACTIVE_AGENTS)`.
//!
//! Spatial inter-CTA locality is exploited between concurrently-running
//! agents of one SM; temporal locality between an agent's consecutive
//! tasks.

use crate::error::ClusterError;
use crate::partition::Partition;
use crate::protocol::{counter_addr, BindingMode, ProtocolSpec, BROADCAST_COST, COUNTER_TAG};
use gpu_sim::{
    occupancy, ArchGen, CacheOp, CtaContext, GpuConfig, KernelSpec, LaunchConfig, MemAccess, Op,
    Program, ProgramBuilder,
};

/// Collects the first `depth` L1-cacheable loads of `ops` as
/// non-blocking `PrefetchL1` copies (the reshaped-order prefetch body,
/// §4.3-(III)).
fn collect_prefetches(ops: &[Op], depth: usize, out: &mut Vec<Op>) {
    out.extend(
        ops.iter()
            .filter_map(|op| match op {
                Op::Load(a) if a.cache_op == CacheOp::CacheAll => {
                    Some(Op::Load(a.clone().with_cache_op(CacheOp::PrefetchL1)))
                }
                _ => None,
            })
            .take(depth),
    );
}

/// A kernel transformed by agent-based clustering.
///
/// # Examples
///
/// ```
/// use cta_clustering::AgentKernel;
/// use gpu_kernels::{MatrixMul, Workload};
/// use gpu_sim::{arch, Simulation};
///
/// let cfg = arch::tesla_k40();
/// let mm = MatrixMul::new(4, 4, 2);
/// let agents = AgentKernel::build(mm, &cfg)?; // Y-partition comes from the builder
/// let stats = Simulation::new(cfg, &agents).run()?;
/// assert!(stats.cycles > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct AgentKernel<K> {
    inner: K,
    partition: Partition,
    arch: ArchGen,
    num_sms: usize,
    max_agents: u32,
    active_agents: u32,
    prefetch_depth: usize,
}

impl<K: KernelSpec> AgentKernel<K> {
    /// Builds the transform against `cfg` with an explicit partition.
    /// `MAX_AGENTS` is the occupancy bound of the kernel on one SM, and
    /// all agents start active.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ClusterSmMismatch`] unless the partition
    /// has exactly one cluster per SM, and propagates occupancy errors
    /// for unschedulable kernels.
    pub fn with_partition(
        inner: K,
        cfg: &GpuConfig,
        partition: Partition,
    ) -> Result<Self, ClusterError> {
        if partition.num_clusters() != cfg.num_sms as u64 {
            return Err(ClusterError::ClusterSmMismatch {
                clusters: partition.num_clusters(),
                sms: cfg.num_sms,
            });
        }
        if partition.grid() != inner.launch().grid {
            return Err(ClusterError::InvalidPartition(
                "partition grid does not match the kernel grid".into(),
            ));
        }
        let occ = occupancy(cfg, &inner.launch())?;
        Ok(AgentKernel {
            inner,
            partition,
            arch: cfg.arch,
            num_sms: cfg.num_sms,
            max_agents: occ.ctas_per_sm,
            active_agents: occ.ctas_per_sm,
            prefetch_depth: 0,
        })
    }

    /// Builds the transform with the default Y-partition (row-major
    /// indexing) into one cluster per SM.
    ///
    /// # Errors
    ///
    /// Same as [`with_partition`](Self::with_partition).
    pub fn build(inner: K, cfg: &GpuConfig) -> Result<Self, ClusterError> {
        let partition = Partition::y(inner.launch().grid, cfg.num_sms as u64)?;
        Self::with_partition(inner, cfg, partition)
    }

    /// CTA throttling (§4.3-(I)): activates only `active` of the
    /// `MAX_AGENTS` agents per SM. The grid stays at
    /// `SMs x MAX_AGENTS` — surplus agents retire immediately — because
    /// shrinking the grid would let the unbalanced hardware scheduler
    /// starve some SM's cluster.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidThrottle`] unless
    /// `1 <= active <= MAX_AGENTS`.
    pub fn with_active_agents(mut self, active: u32) -> Result<Self, ClusterError> {
        if active == 0 || active > self.max_agents {
            return Err(ClusterError::InvalidThrottle {
                active,
                max: self.max_agents,
            });
        }
        self.active_agents = active;
        Ok(self)
    }

    /// CTA prefetching over the reshaped order (§4.3-(III)): while
    /// executing task `w`, issue non-blocking L1 prefetches for the first
    /// `depth` loads of the agent's *next* task.
    pub fn with_prefetch(mut self, depth: usize) -> Self {
        self.prefetch_depth = depth;
        self
    }

    /// Caps `MAX_AGENTS` below the occupancy bound — the compile-time
    /// `MAX_AGENTS` knob of §4.1, exposed as a DSE axis. The grid
    /// shrinks to `SMs x min(cap, occupancy bound)` and `ACTIVE_AGENTS`
    /// is clamped into the new range.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidThrottle`] when `cap` is zero.
    pub fn with_max_agents(mut self, cap: u32) -> Result<Self, ClusterError> {
        if cap == 0 {
            return Err(ClusterError::InvalidThrottle {
                active: 0,
                max: self.max_agents,
            });
        }
        self.max_agents = self.max_agents.min(cap);
        self.active_agents = self.active_agents.min(self.max_agents);
        Ok(self)
    }

    /// The wrapped kernel.
    pub fn inner(&self) -> &K {
        &self.inner
    }

    /// The partition in use.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// `MAX_AGENTS`: occupancy-bounded agents per SM.
    pub fn max_agents(&self) -> u32 {
        self.max_agents
    }

    /// `ACTIVE_AGENTS`: agents that execute tasks after throttling.
    pub fn active_agents(&self) -> u32 {
        self.active_agents
    }

    /// Prefetch depth: leading loads of the next task issued early
    /// (0 = prefetching disabled).
    pub fn prefetch_depth(&self) -> usize {
        self.prefetch_depth
    }

    /// The architecture generation the transform was built against.
    pub fn arch(&self) -> ArchGen {
        self.arch
    }

    /// Tasks (original CTA ids) agent `agent_id` of SM `sm_id` executes,
    /// in order.
    pub fn tasks_of(&self, sm_id: usize, agent_id: u64) -> Vec<u64> {
        let i = sm_id as u64;
        if i >= self.partition.num_clusters() || agent_id >= self.active_agents as u64 {
            return Vec::new();
        }
        let jobs = self.partition.cluster_size(i);
        (agent_id..jobs)
            .step_by(self.active_agents as usize)
            .map(|w| self.partition.invert(w, i))
            .collect()
    }

    /// Architecture-level description of this launch's agent protocol,
    /// for the concurrency verifier (see [`crate::protocol`]).
    pub fn protocol(&self) -> ProtocolSpec {
        ProtocolSpec {
            binding: BindingMode::of(self.arch),
            num_sms: self.num_sms,
            max_agents: self.max_agents,
            active_agents: self.active_agents,
            cluster_sizes: (0..self.partition.num_clusters())
                .map(|i| self.partition.cluster_size(i))
                .collect(),
        }
    }

    /// The agent id a CTA derives at run time: hardware warp-slot based
    /// on static-binding architectures, atomic-ticket based otherwise.
    fn agent_id(&self, ctx: &CtaContext) -> u64 {
        if self.arch.static_warp_slot_binding() {
            ctx.slot as u64
        } else {
            ctx.arrival % self.max_agents as u64
        }
    }
}

impl<K: KernelSpec> KernelSpec for AgentKernel<K> {
    fn name(&self) -> String {
        format!(
            "CLU[{}]x{}/{}",
            self.inner.name(),
            self.active_agents,
            self.max_agents
        )
    }

    fn launch(&self) -> LaunchConfig {
        // Grid = SM * MAX_AGENTS linear CTAs; block and per-CTA resources
        // inherited from the original kernel.
        let inner = self.inner.launch();
        LaunchConfig::new(self.num_sms as u32 * self.max_agents, inner.block)
            .with_regs(inner.regs_per_thread)
            .with_smem(inner.smem_per_cta)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let mut prog = Program::new();
        self.warp_program_into(ctx, warp, &mut prog);
        prog
    }

    fn warp_program_into(&self, ctx: &CtaContext, warp: u32, out: &mut Program) {
        out.clear();
        // SM-based binding overhead (Listing 5, Maxwell/Pascal path):
        // thread 0 bids on a global atomic, everyone waits on the
        // broadcast.
        if !self.arch.static_warp_slot_binding() {
            if warp == 0 {
                out.push(Op::Atomic(MemAccess::scalar(
                    COUNTER_TAG,
                    counter_addr(ctx.sm_id),
                    4,
                )));
            }
            out.push(Op::Compute(BROADCAST_COST));
            out.push(Op::Barrier);
        }
        let agent_id = self.agent_id(ctx);
        if agent_id >= self.active_agents as u64 {
            // Throttled: `if (agent_id >= ACTIVE_AGENTS) return;`.
            // The binding prologue ran, but a lone prologue would leave
            // this CTA's barrier unmatched relative to peers that run
            // tasks — and an all-Compute retirement is cheaper anyway.
            if self.arch.static_warp_slot_binding() {
                out.clear();
            }
            return;
        }
        // Walk the task list arithmetically; `body` and `next_prog` are
        // scratch buffers shared by every task of this warp, so building
        // the full program costs O(1) allocations instead of O(tasks).
        let tasks = self.tasks_of(ctx.sm_id, agent_id);
        let mut body = Program::new();
        let mut next_prog = Program::new();
        for (k, &v) in tasks.iter().enumerate() {
            let task_ctx = CtaContext { cta: v, ..*ctx };
            self.inner.warp_program_into(&task_ctx, warp, &mut body);
            // Reshaped-order prefetching: pull the next task's leading
            // loads while this task runs.
            if self.prefetch_depth > 0 {
                if let Some(&next) = tasks.get(k + 1) {
                    let next_ctx = CtaContext { cta: next, ..*ctx };
                    self.inner
                        .warp_program_into(&next_ctx, warp, &mut next_prog);
                    let mut prefetches: Vec<Op> = Vec::new();
                    collect_prefetches(&next_prog, self.prefetch_depth, &mut prefetches);
                    let at = body.len().saturating_sub(1);
                    for (off, p) in prefetches.into_iter().enumerate() {
                        body.insert(at.min(body.len()) + off, p);
                    }
                }
            }
            out.append(&mut body);
        }
    }

    fn warp_program_build(&self, ctx: &CtaContext, warp: u32, out: &mut ProgramBuilder) {
        // Same program as `warp_program_into`, but task bodies served
        // from the inner kernel's shared-program cache replay as
        // zero-copy segments instead of being regenerated per variant.
        // Prefetches splice between segments exactly where the owned
        // path inserts them: before the last op of the current task.
        let agent_id = self.agent_id(ctx);
        let throttled = agent_id >= self.active_agents as u64;
        if self.arch.static_warp_slot_binding() {
            if throttled {
                return; // surplus static agent: empty program
            }
        } else {
            if warp == 0 {
                out.push(Op::Atomic(MemAccess::scalar(
                    COUNTER_TAG,
                    counter_addr(ctx.sm_id),
                    4,
                )));
            }
            out.push(Op::Compute(BROADCAST_COST));
            out.push(Op::Barrier);
            if throttled {
                return; // surplus dynamic agent: binding prologue only
            }
        }
        let tasks = self.tasks_of(ctx.sm_id, agent_id);
        let mut scratch = Program::new();
        let mut next_scratch = Program::new();
        let mut prefetches: Vec<Op> = Vec::new();
        for (k, &v) in tasks.iter().enumerate() {
            prefetches.clear();
            if self.prefetch_depth > 0 {
                if let Some(&next) = tasks.get(k + 1) {
                    let next_ctx = CtaContext { cta: next, ..*ctx };
                    if let Some(arc) = self.inner.warp_program_arc(&next_ctx, warp) {
                        collect_prefetches(&arc, self.prefetch_depth, &mut prefetches);
                    } else {
                        self.inner
                            .warp_program_into(&next_ctx, warp, &mut next_scratch);
                        collect_prefetches(&next_scratch, self.prefetch_depth, &mut prefetches);
                    }
                }
            }
            let task_ctx = CtaContext { cta: v, ..*ctx };
            if let Some(arc) = self.inner.warp_program_arc(&task_ctx, warp) {
                if prefetches.is_empty() {
                    out.push_shared(&arc);
                } else {
                    let at = arc.len().saturating_sub(1);
                    out.push_shared_range(&arc, 0, at);
                    for p in prefetches.drain(..) {
                        out.push(p);
                    }
                    out.push_shared_range(&arc, at, arc.len());
                }
            } else {
                self.inner.warp_program_into(&task_ctx, warp, &mut scratch);
                let at = scratch.len().saturating_sub(1);
                for (i, op) in scratch.drain(..).enumerate() {
                    if i == at {
                        for p in prefetches.drain(..) {
                            out.push(p);
                        }
                    }
                    out.push(op);
                }
                // Empty task body: the owned path appends bare prefetches.
                for p in prefetches.drain(..) {
                    out.push(p);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{arch, Dim3, Simulation};

    /// Probe kernel whose single load encodes the executing original CTA.
    #[derive(Debug, Clone)]
    struct Probe {
        grid: Dim3,
    }

    impl KernelSpec for Probe {
        fn name(&self) -> String {
            "probe".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(self.grid, 32u32)
        }
        fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
            vec![Op::Load(MemAccess::scalar(0, ctx.cta * 4, 4))]
        }
    }

    #[test]
    fn grid_is_sms_times_max_agents() {
        let cfg = arch::gtx570(); // 15 SMs, 8 CTA slots
        let probe = Probe {
            grid: Dim3::linear(480),
        };
        let a = AgentKernel::build(probe, &cfg).unwrap();
        assert_eq!(a.max_agents(), 8);
        assert_eq!(a.launch().num_ctas(), 15 * 8);
    }

    #[test]
    fn tasks_cover_the_original_grid_exactly_once() {
        let cfg = arch::gtx570();
        let probe = Probe {
            grid: Dim3::plane(16, 10),
        };
        let a = AgentKernel::build(probe, &cfg).unwrap();
        let mut all: Vec<u64> = Vec::new();
        for sm in 0..cfg.num_sms {
            for agent in 0..a.active_agents() as u64 {
                all.extend(a.tasks_of(sm, agent));
            }
        }
        all.sort_unstable();
        assert_eq!(all, (0..160).collect::<Vec<_>>());
    }

    #[test]
    fn throttling_redistributes_not_drops() {
        let cfg = arch::tesla_k40();
        let probe = Probe {
            grid: Dim3::plane(8, 8),
        };
        let a = AgentKernel::build(probe, &cfg)
            .unwrap()
            .with_active_agents(2)
            .unwrap();
        let mut all: Vec<u64> = Vec::new();
        for sm in 0..cfg.num_sms {
            for agent in 0..16 {
                all.extend(a.tasks_of(sm, agent));
            }
        }
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
        // Agents beyond the throttle run nothing.
        assert!(a.tasks_of(0, 2).is_empty());
    }

    #[test]
    fn invalid_throttle_rejected() {
        let cfg = arch::gtx570();
        let probe = Probe {
            grid: Dim3::linear(64),
        };
        let a = AgentKernel::build(probe, &cfg).unwrap();
        assert!(matches!(
            a.clone().with_active_agents(0),
            Err(ClusterError::InvalidThrottle { .. })
        ));
        assert!(a.with_active_agents(9).is_err());
    }

    #[test]
    fn cluster_count_must_match_sms() {
        let cfg = arch::gtx570();
        let probe = Probe {
            grid: Dim3::linear(64),
        };
        let partition = Partition::y(Dim3::linear(64), 10).unwrap();
        assert!(matches!(
            AgentKernel::with_partition(probe, &cfg, partition),
            Err(ClusterError::ClusterSmMismatch {
                clusters: 10,
                sms: 15
            })
        ));
    }

    #[test]
    fn every_original_cta_executes_exactly_once_end_to_end() {
        // Run through the full simulator and verify, via the trace, that
        // the agent kernel touches the same address set as the original.
        let cfg = arch::gtx980(); // dynamic binding path
        let probe = Probe {
            grid: Dim3::plane(10, 8),
        };
        let a = AgentKernel::build(probe.clone(), &cfg).unwrap();

        let mut sink = gpu_sim::VecSink::new();
        Simulation::new(cfg.clone(), &a)
            .run_traced(&mut sink)
            .unwrap();
        let mut touched: Vec<u64> = sink
            .events
            .iter()
            .filter(|e| e.tag == 0)
            .map(|e| e.addrs[0] / 4)
            .collect();
        touched.sort_unstable();
        assert_eq!(touched, (0..80).collect::<Vec<_>>());
    }

    #[test]
    fn dynamic_binding_pays_atomic_overhead() {
        let cfg_maxwell = arch::gtx980();
        let cfg_kepler = arch::tesla_k40();
        let probe = Probe {
            grid: Dim3::linear(128),
        };
        let am = AgentKernel::build(probe.clone(), &cfg_maxwell).unwrap();
        let ak = AgentKernel::build(probe, &cfg_kepler).unwrap();
        let sm_stats = Simulation::new(cfg_maxwell, &am).run().unwrap();
        let k_stats = Simulation::new(cfg_kepler, &ak).run().unwrap();
        assert!(
            sm_stats.memory.l2_atomic_txns > 0,
            "Maxwell agents bid via atomics"
        );
        assert_eq!(
            k_stats.memory.l2_atomic_txns, 0,
            "Kepler agents read warp slots"
        );
    }

    /// Probe that serves its programs as shared slices (the cross-variant
    /// program-cache path), with multi-op bodies so prefetch splicing has
    /// interior structure to preserve.
    #[derive(Debug, Clone)]
    struct ArcProbe {
        grid: Dim3,
    }

    impl KernelSpec for ArcProbe {
        fn name(&self) -> String {
            "arc-probe".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(self.grid, 64u32)
        }
        fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
            vec![
                Op::Load(MemAccess::scalar(0, (ctx.cta * 2 + warp as u64) * 4, 4)),
                Op::Compute(3),
                Op::Load(MemAccess::scalar(1, 0x1000 + ctx.cta * 4, 4)),
            ]
        }
        fn warp_program_arc(&self, ctx: &CtaContext, warp: u32) -> Option<std::sync::Arc<[Op]>> {
            Some(self.warp_program(ctx, warp).into())
        }
    }

    /// The segment-building path must emit exactly the op sequence the
    /// legacy generation path produces — across static (Kepler) and
    /// dynamic (Maxwell) binding, prefetch off/on, throttled and active
    /// agents, and inner kernels with and without shared programs.
    #[test]
    fn builder_path_matches_generated_program() {
        let grid = Dim3::plane(8, 8);
        for cfg in [arch::tesla_k40(), arch::gtx980()] {
            for depth in [0usize, 1, 2] {
                let kernels: Vec<Box<dyn KernelSpec>> = vec![
                    Box::new(
                        AgentKernel::build(ArcProbe { grid }, &cfg)
                            .unwrap()
                            .with_active_agents(2)
                            .unwrap()
                            .with_prefetch(depth),
                    ),
                    Box::new(
                        AgentKernel::build(Probe { grid }, &cfg)
                            .unwrap()
                            .with_active_agents(2)
                            .unwrap()
                            .with_prefetch(depth),
                    ),
                ];
                for a in &kernels {
                    // Slot/arrival 0 and 1: active agents; 3: throttled on
                    // both binding modes (active_agents = 2).
                    for id in [0u64, 1, 3] {
                        let ctx = CtaContext {
                            cta: id,
                            sm_id: 2,
                            slot: id as u32,
                            arrival: id,
                            num_sms: cfg.num_sms,
                        };
                        for warp in 0..2 {
                            let mut b = ProgramBuilder::default();
                            a.warp_program_build(&ctx, warp, &mut b);
                            assert_eq!(
                                b.into_ops(),
                                a.warp_program(&ctx, warp),
                                "kernel {} ctx {id} warp {warp} depth {depth}",
                                a.name(),
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn prefetch_inserts_nonblocking_loads() {
        let cfg = arch::tesla_k40();
        let probe = Probe {
            grid: Dim3::linear(128),
        };
        let a = AgentKernel::build(probe, &cfg).unwrap().with_prefetch(1);
        let ctx = CtaContext {
            cta: 0,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: cfg.num_sms,
        };
        let prog = a.warp_program(&ctx, 0);
        let prefetches = prog
            .iter()
            .filter(|op| matches!(op, Op::Load(a) if a.cache_op == CacheOp::PrefetchL1))
            .count();
        // One prefetch per task except the last.
        let tasks = a.tasks_of(0, 0).len();
        assert_eq!(prefetches, tasks - 1);
    }
}
