//! The full CTA-Clustering walk-through of the paper's §4.2 and Figure 8,
//! performed by hand on matrix multiplication: Partitioning → Inverting →
//! Binding, with both the redirection-based and the agent-based schemes,
//! under different GigaThread-engine models.
//!
//! Run with: `cargo run --release --example matrix_multiply`

use cta_clustering::{rr_binding, AgentKernel, Partition, RedirectionKernel};
use gpu_kernels::MatrixMul;
use gpu_sim::sched::{HardwareLike, Randomized, StrictRoundRobin};
use gpu_sim::{arch, KernelSpec, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 8 toy geometry: a 3x2 grid of CTAs, two SMs'
    // worth of clusters.
    println!("== Step 1+2: Partitioning f and Inverting f^-1 (Figure 8) ==");
    let toy = Partition::y(gpu_sim::Dim3::plane(3, 2), 2)?;
    let (w, i) = toy.assign(3);
    println!("f(CTA-(0,1)) = f(v=3) = (w={w}, i={i})   [paper: (0, 1)]");
    let v = toy.invert(2, 1);
    println!("f^-1((w=2, i=1)) = v = {v}               [paper: 5]");
    for c in 0..2 {
        println!("cluster {c}: CTAs {:?}", toy.cluster(c));
    }
    println!();

    println!("== Step 3: Binding g (Eq. 8, RR assumption) ==");
    let (w, i) = rr_binding(4, 2);
    println!("RR-binding of new-kernel CTA u=4 with M=2: (w={w}, i={i})  [paper: (2, 0)]");
    println!();

    // Now at evaluation scale, on Fermi.
    let cfg = arch::gtx570().prefer_l1(8192);
    let mm = MatrixMul::new(10, 10, 10);
    let partition = || Partition::y(mm.launch().grid, cfg.num_sms as u64).expect("valid");

    println!(
        "== Redirection vs agents under three GigaThread models ({}) ==",
        cfg.name
    );
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "scheduler", "baseline", "redirection", "agents"
    );
    for sched_name in ["strict-rr", "hardware-like", "randomized"] {
        let make = || -> Box<dyn gpu_sim::sched::CtaScheduler> {
            match sched_name {
                "strict-rr" => Box::new(StrictRoundRobin::new()),
                "hardware-like" => Box::new(HardwareLike::new(7)),
                _ => Box::new(Randomized::new(7)),
            }
        };
        let base = Simulation::new(cfg.clone(), &mm)
            .with_scheduler(make())
            .run()?;
        let rd = RedirectionKernel::new(mm.clone(), partition());
        let rd_stats = Simulation::new(cfg.clone(), &rd)
            .with_scheduler(make())
            .run()?;
        let agents = AgentKernel::with_partition(mm.clone(), &cfg, partition())?;
        let ag_stats = Simulation::new(cfg.clone(), &agents)
            .with_scheduler(make())
            .run()?;
        println!(
            "{:<14} {:>11}c {:>11.2}x {:>11.2}x",
            sched_name,
            base.cycles,
            rd_stats.speedup_vs(&base),
            ag_stats.speedup_vs(&base),
        );
    }
    println!();
    println!("redirection depends on the RR assumption; agents read %smid and");
    println!("work under any scheduler — the paper's core argument (§4.2.4).");
    Ok(())
}
