//! The content-addressed plan cache.
//!
//! Keyed by [`Request::digest`](crate::proto::Request::digest) — the
//! canonical hash of a request's semantic fields — so identical tenant
//! requests and parameter-sweep twins collapse onto one entry no matter
//! how their JSON was formatted or which worker thread planned them.
//! Error results are cached too: a malformed kernel costs its diagnosis
//! once, not per duplicate.
//!
//! Concurrency model, chosen for deterministic accounting:
//!
//! * The cache is sharded by the digest's low bits; each shard is a
//!   small mutex-protected map. Shard locks are held only to look up or
//!   insert the entry handle, never while planning.
//! * Each entry is an `Arc<OnceLock>`; the **first** arrival for a
//!   digest owns the fill and counts one miss, every other arrival —
//!   including ones that block on an in-flight fill — counts one hit.
//!   So `misses == distinct digests` and `hits + misses == lookups`
//!   hold exactly, independent of thread interleaving; the soak test
//!   pins both conservation laws.

use crate::planner::PlanBody;
use crate::proto::ProtoError;
use locality::Digest;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A cached planning outcome.
pub type CachedPlan = Result<PlanBody, ProtoError>;

type Slot = Arc<OnceLock<CachedPlan>>;

/// Shards: a power of two so the digest's low bits select uniformly.
const SHARDS: usize = 64;

/// Monotonic counters describing cache traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups.
    pub lookups: u64,
    /// Lookups served from an existing entry (or an in-flight fill).
    pub hits: u64,
    /// Lookups that owned a fill (== distinct digests seen).
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// Sharded content-addressed map from request digest to planning
/// outcome. See the module docs for the accounting invariants.
#[derive(Debug)]
pub struct PlanCache {
    shards: Vec<Mutex<HashMap<Digest, Slot>>>,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: Digest) -> &Mutex<HashMap<Digest, Slot>> {
        &self.shards[(key.lo() as usize) & (SHARDS - 1)]
    }

    /// Looks `key` up, filling via `compute` on first arrival. Returns
    /// the cached outcome and whether this lookup was a hit.
    ///
    /// `compute` runs outside every shard lock; concurrent arrivals for
    /// the *same* digest block on the owning fill (via `OnceLock`) and
    /// still count as hits, arrivals for other digests proceed in
    /// parallel.
    pub fn get_or_plan(
        &self,
        key: Digest,
        compute: impl FnOnce() -> CachedPlan,
    ) -> (CachedPlan, bool) {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let (slot, owner) = {
            let mut shard = self.shard(key).lock().expect("cache shard poisoned");
            match shard.get(&key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot: Slot = Arc::new(OnceLock::new());
                    shard.insert(key, Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if owner {
            self.misses.fetch_add(1, Ordering::Relaxed);
            let value = slot.get_or_init(compute);
            (value.clone(), false)
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            // Not the owner: wait for the fill if it is still running.
            (slot.wait().clone(), true)
        }
    }

    /// Entries currently resident (== distinct digests seen).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent snapshot of the traffic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(tagged: u32) -> CachedPlan {
        Err(ProtoError::new("parse", format!("fixture {tagged}")))
    }

    #[test]
    fn first_arrival_fills_duplicates_hit() {
        let cache = PlanCache::new();
        let k = Digest(42);
        let (v1, hit1) = cache.get_or_plan(k, || body(1));
        let (v2, hit2) = cache.get_or_plan(k, || body(2));
        assert!(!hit1 && hit2);
        assert_eq!(v1, v2, "second compute never ran");
        let s = cache.stats();
        assert_eq!((s.lookups, s.hits, s.misses), (2, 1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn conservation_laws_hold_under_contention() {
        let cache = Arc::new(PlanCache::new());
        let distinct = 16u64;
        let threads = 8;
        let per_thread = 200u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let key = Digest(((i + t) % distinct) as u128);
                        let (v, _) = cache.get_or_plan(key, || body(key.0 as u32));
                        assert_eq!(v, body(key.0 as u32), "fills are keyed correctly");
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.lookups, threads * per_thread);
        assert_eq!(s.misses, distinct, "one fill per distinct digest");
        assert_eq!(s.hits + s.misses, s.lookups);
        assert_eq!(cache.len() as u64, distinct);
        assert!(s.hit_rate() > 0.98);
    }
}
