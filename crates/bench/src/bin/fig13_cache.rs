//! Regenerates the paper's Figure 13: normalized L2 transactions and L1
//! hit rates for every Table 2 application under every variant.

use cluster_bench::report::{pct, Table};
use cluster_bench::{configured_threads, evaluate_matrix, Panel, RunClock, Variant};
use cta_clustering::ClusterError;

fn main() -> Result<(), ClusterError> {
    cluster_bench::with_obs("fig13_cache", run)
}

fn run() -> Result<(), ClusterError> {
    let threads = configured_threads();
    let clock = RunClock::start(threads);
    println!("Figure 13: normalized L2 cache transactions and L1 hit rates");
    println!("(L2 columns normalized to BSL = 1.00; HT_RTE = L1 read hit rate)");
    println!();
    for eval in evaluate_matrix(&gpu_sim::arch::all_presets(), threads)? {
        println!("=== {} ===", eval.gpu);
        for panel in Panel::ALL {
            println!("--- {panel} ---");
            let mut t = Table::new(&[
                "app",
                "L2 RD",
                "L2 CLU",
                "L2 CLU+TOT",
                "L2 +BPS",
                "L2 PFH+TOT",
                "HT_RTE BSL",
                "HT_RTE CLU+TOT",
            ]);
            for app in eval.panel_apps(panel) {
                t.row(vec![
                    app.info.abbr.to_string(),
                    format!("{:.2}", app.l2_norm(Variant::Redirection)),
                    format!("{:.2}", app.l2_norm(Variant::Clustering)),
                    format!("{:.2}", app.l2_norm(Variant::ClusteringThrottled)),
                    format!("{:.2}", app.l2_norm(Variant::ClusteringThrottledBypass)),
                    format!("{:.2}", app.l2_norm(Variant::PrefetchThrottled)),
                    pct(app.stats(Variant::Baseline).l1_hit_rate()),
                    pct(app.stats(Variant::ClusteringThrottled).l1_hit_rate()),
                ]);
            }
            t.row(vec![
                "G-M".into(),
                format!("{:.2}", eval.geomean_l2(panel, Variant::Redirection)),
                format!("{:.2}", eval.geomean_l2(panel, Variant::Clustering)),
                format!(
                    "{:.2}",
                    eval.geomean_l2(panel, Variant::ClusteringThrottled)
                ),
                format!(
                    "{:.2}",
                    eval.geomean_l2(panel, Variant::ClusteringThrottledBypass)
                ),
                format!("{:.2}", eval.geomean_l2(panel, Variant::PrefetchThrottled)),
                "".into(),
                "".into(),
            ]);
            print!("{t}");
            println!();
        }
    }
    println!("paper reference L2 reductions (CLU+TOT):");
    println!("  algorithm:  55% / 65% / 29% / 28% (Fermi/Kepler/Maxwell/Pascal)");
    println!("  cache-line: 81% / 71% / 34% / ~0%");
    println!();
    println!("{}", clock.footer());
    Ok(())
}
