//! NN — convolutional neural-network layer (GPGPU-Sim benchmark suite).
//!
//! Single-warp CTAs (Table 2: WP = 1) compute one row segment of output
//! pixels each. All CTAs share the small filter table; CTAs in the same
//! output row (same `blockIdx.y`) share the input-image rows their
//! receptive fields overlap on — algorithm-related locality clustered by
//! Y-partitioning.

use crate::common::{read_words, write_words};
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, Dim3, KernelSpec, LaunchConfig, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "NN",
    full_name: "nn",
    description: "Convolutional neural network",
    category: PaperCategory::Algorithm,
    warps_per_cta: 1,
    partition: PartitionHint::Y,
    opt_agents: [8, 16, 32, 32],
    regs: [21, 35, 37, 32],
    smem: 0,
    source: "GPGPU-Sim",
};

const TAG_INPUT: u16 = 0;
const TAG_FILTER: u16 = 1;
const TAG_OUTPUT: u16 = 2;

/// The convolution-layer workload model.
#[derive(Debug, Clone)]
pub struct NeuralNet {
    /// CTAs along the output row (each covers 32 pixels).
    pub grid_x: u32,
    /// Output rows.
    pub grid_y: u32,
    /// Square filter side (e.g. 5 for a 5x5 kernel).
    pub filter: u32,
    /// Registers per thread.
    pub regs: u32,
}

impl NeuralNet {
    /// Default evaluation-scale instance for `arch`.
    pub fn for_arch(arch: ArchGen) -> Self {
        NeuralNet {
            grid_x: 16,
            grid_y: 192,
            filter: 5,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance.
    pub fn new(grid_x: u32, grid_y: u32, filter: u32) -> Self {
        NeuralNet {
            grid_x,
            grid_y,
            filter,
            regs: INFO.regs[0],
        }
    }

    fn input_row_words(&self) -> u64 {
        self.grid_x as u64 * 32 + self.filter as u64
    }
}

impl KernelSpec for NeuralNet {
    fn name(&self) -> String {
        format!("NN({}x{},f{})", self.grid_x, self.grid_y, self.filter)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::plane(self.grid_x, self.grid_y), 32u32)
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
        let (bx, by, _) = self.launch().grid.coords_row_major(ctx.cta);
        let mut prog = Program::new();
        // Filter weights: shared by the whole grid.
        let fwords = (self.filter * self.filter) as u64;
        let mut w = 0;
        while w < fwords {
            let lanes = (fwords - w).min(32) as u32;
            prog.push(read_words(TAG_FILTER, w, lanes));
            w += 32;
        }
        // Receptive field: `filter` input rows, each 32 + filter words;
        // the row span is shared with same-row neighbours (same by).
        for r in 0..self.filter as u64 {
            let row = by as u64 + r;
            let col = bx as u64 * 32;
            let word = row * self.input_row_words() + col;
            prog.push(read_words(TAG_INPUT, word, 32));
            let tail = self.filter.min(32);
            prog.push(read_words(TAG_INPUT, word + 32, tail));
            prog.push(Op::Compute(self.filter));
        }
        prog.push(write_words(
            TAG_OUTPUT,
            by as u64 * self.grid_x as u64 * 32 + bx as u64 * 32,
            32,
        ));
        prog
    }
}

impl Workload for NeuralNet {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch;

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        }
    }

    #[test]
    fn table2_occupancy() {
        // Table 2 "CTAs": 8/16/32/32 — CTA-slot bound single-warp CTAs.
        let expect = [8u32, 16, 32, 32];
        for (i, cfg) in arch::all_presets().into_iter().enumerate() {
            let nn = NeuralNet::for_arch(cfg.arch);
            let occ = gpu_sim::occupancy(&cfg, &nn.launch()).unwrap();
            assert_eq!(occ.ctas_per_sm, expect[i], "on {}", cfg.name);
        }
    }

    #[test]
    fn filter_shared_by_all_ctas() {
        let nn = NeuralNet::new(4, 4, 5);
        let filt = |cta| {
            nn.warp_program(&ctx(cta), 0)
                .iter()
                .filter_map(|op| op.access())
                .filter(|a| a.tag == TAG_FILTER)
                .flat_map(|a| a.addrs.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(filt(0), filt(13));
    }

    #[test]
    fn row_neighbours_share_input_rows() {
        let nn = NeuralNet::new(4, 4, 5);
        let rows = |cta| {
            nn.warp_program(&ctx(cta), 0)
                .iter()
                .filter_map(|op| op.access())
                .filter(|a| a.tag == TAG_INPUT)
                .map(|a| a.addrs[0] / 4 / nn.input_row_words())
                .collect::<std::collections::BTreeSet<_>>()
        };
        // CTAs 0 and 1 share by=0: identical input row sets.
        assert_eq!(rows(0), rows(1));
        // CTA 4 (by=1) overlaps but differs.
        assert_ne!(rows(0), rows(4));
        assert!(rows(0).intersection(&rows(4)).count() > 0);
    }
}
