//! Figure 3 reproduction: the share of inter- vs intra-CTA reuse in the
//! pre-L1 access stream of 33 applications.

use cta_clustering::ClusterError;
use gpu_sim::{ArchGen, Simulation};
use locality::{ReuseProfiler, ReuseSummary};

/// One Figure 3 bar.
#[derive(Debug, Clone)]
pub struct ReuseBar {
    /// Application abbreviation.
    pub abbr: &'static str,
    /// Inter-CTA share of all reuse.
    pub inter: f64,
    /// Intra-CTA share (intra-warp + inter-warp) of all reuse.
    pub intra: f64,
    /// Raw summary for deeper inspection.
    pub summary: ReuseSummary,
}

/// Profiles the full 33-app Figure 3 suite. The quantification is
/// data-driven and scheduler/cache-independent (paper §3.2), so a single
/// architecture's stream suffices; `arch` only selects default geometry.
pub fn profile_suite(arch: ArchGen) -> Result<Vec<ReuseBar>, ClusterError> {
    let cfg = gpu_sim::arch::preset_for(arch);
    gpu_kernels::suite::fig3_suite(arch)
        .into_iter()
        .map(|w| {
            let abbr = w.info().abbr;
            let mut profiler = ReuseProfiler::new();
            Simulation::new(cfg.clone(), &w)
                .run_traced(&mut profiler)
                .map_err(|e| {
                    ClusterError::harness(format!("profiling {abbr} on {}: {e}", cfg.name))
                })?;
            let summary = profiler.summary();
            Ok(ReuseBar {
                abbr,
                inter: summary.inter_cta_share(),
                intra: summary.intra_cta_share(),
                summary,
            })
        })
        .collect()
}

/// Average inter-CTA share over the bars (the paper reports ≈45%).
pub fn average_inter_share(bars: &[ReuseBar]) -> f64 {
    if bars.is_empty() {
        return 0.0;
    }
    bars.iter().map(|b| b.inter).sum::<f64>() / bars.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_apps_have_high_inter_share() {
        let cfg = gpu_sim::arch::tesla_k40();
        let w = gpu_kernels::suite::by_abbr("NN", ArchGen::Kepler).unwrap();
        let mut p = ReuseProfiler::new();
        Simulation::new(cfg, &w).run_traced(&mut p).unwrap();
        assert!(p.summary().inter_cta_share() > 0.5);
    }

    #[test]
    fn streaming_apps_have_no_reuse() {
        let cfg = gpu_sim::arch::tesla_k40();
        let w = gpu_kernels::suite::by_abbr("BS", ArchGen::Kepler).unwrap();
        let mut p = ReuseProfiler::new();
        Simulation::new(cfg, &w).run_traced(&mut p).unwrap();
        assert!(p.summary().reuse_rate() < 0.05);
    }
}
