//! The load/store unit's coalescer: collapses the per-lane addresses of a
//! warp-wide access into the minimal set of cache-line transactions.

use crate::kernel::MemAccess;

/// Collapses per-lane addresses into distinct line-aligned transactions of
/// `line_bytes` granularity, preserving first-touch order.
///
/// Accounts for lanes whose word straddles a line boundary (possible for
/// unaligned 8-byte accesses against 32B lines) by emitting both lines.
///
/// # Examples
///
/// ```
/// use gpu_sim::{coalesce_lines, MemAccess};
///
/// // 32 consecutive floats: one 128B transaction, four 32B transactions.
/// let a = MemAccess::coalesced(0, 0, 32, 4);
/// assert_eq!(coalesce_lines(&a, 128).len(), 1);
/// assert_eq!(coalesce_lines(&a, 32).len(), 4);
/// ```
pub fn coalesce_lines(access: &MemAccess, line_bytes: u32) -> Vec<u64> {
    let mut lines = Vec::with_capacity(4);
    coalesce_lines_into(access, line_bytes, &mut lines);
    lines
}

/// [`coalesce_lines`], writing into a caller-provided buffer.
///
/// Clears `out` first and fills it with the same lines in the same
/// (first-touch) order. The simulation engine calls this once per memory
/// instruction, so reusing one scratch buffer across the whole run
/// removes the hot path's per-access allocations.
pub fn coalesce_lines_into(access: &MemAccess, line_bytes: u32, out: &mut Vec<u64>) {
    debug_assert!(line_bytes.is_power_of_two());
    let mask = !(line_bytes as u64 - 1);
    out.clear();
    let bpl = access.bytes_per_lane as u64;
    // Fast path: consecutive equal-sized lanes — the shape
    // [`MemAccess::coalesced`](crate::MemAccess::coalesced) builds and by
    // far the most issued — cover one contiguous byte range, so the
    // distinct lines are an arithmetic sequence and first-touch order is
    // ascending line order. One compare per lane instead of the dedup
    // scan; non-contiguous accesses fail the check on their first lane
    // pair and fall through unchanged.
    let addrs = &access.addrs;
    if addrs.len() > 1 && addrs.windows(2).all(|w| w[1] == w[0].wrapping_add(bpl)) {
        let first = addrs[0] & mask;
        let last = (addrs[addrs.len() - 1] + bpl - 1) & mask;
        let mut line = first;
        loop {
            out.push(line);
            if line >= last {
                break;
            }
            line += line_bytes as u64;
        }
        return;
    }
    // Second fast path: strictly increasing lanes — every strided access
    // (the divergent shapes that dominate single runs) is sorted, just not
    // contiguous. Ascending addresses make line numbers non-decreasing, so
    // duplicates are adjacent and one `last()` compare replaces the
    // quadratic dedup scan. A lane whose word straddles a line boundary
    // would emit its second line out of order, so any straddle bails to
    // the general path (e.g. 8B words at 28,30 against 32B lines must
    // yield [0, 32], not [0, 32, 0]).
    if addrs.len() > 1 && addrs.windows(2).all(|w| w[1] > w[0]) {
        let mut ok = true;
        for &addr in addrs {
            let first = addr & mask;
            if (addr + bpl - 1) & mask != first {
                ok = false;
                break;
            }
            if out.last() != Some(&first) {
                out.push(first);
            }
        }
        if ok {
            return;
        }
        out.clear();
    }
    let mut push = |line: u64| {
        if !out.contains(&line) {
            out.push(line);
        }
    };
    for &addr in addrs {
        let first = addr & mask;
        push(first);
        let last = (addr + bpl - 1) & mask;
        if last != first {
            push(last);
        }
    }
}

/// The *coalescing degree* of an access: active lanes divided by the
/// number of transactions it generates. A fully coalesced 32-lane float
/// access against 128B lines has degree 32; a fully divergent one has
/// degree 1. The framework's probe (§4.4) uses the average degree to
/// distinguish streaming kernels from data-related ones.
pub fn coalescing_degree(access: &MemAccess, line_bytes: u32) -> f64 {
    let txns = coalesce_lines(access, line_bytes).len();
    if txns == 0 {
        return 0.0;
    }
    access.addrs.len() as f64 / txns as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::MemAccess;

    #[test]
    fn coalesced_float_warp() {
        let a = MemAccess::coalesced(0, 256, 32, 4);
        assert_eq!(coalesce_lines(&a, 128), vec![256]);
        assert_eq!(coalesce_lines(&a, 32), vec![256, 288, 320, 352]);
    }

    #[test]
    fn misaligned_access_spans_two_lines() {
        // Base 120, 32 lanes x 4B = bytes [120, 248): lines 0 and 128.
        let a = MemAccess::coalesced(0, 120, 32, 4);
        assert_eq!(coalesce_lines(&a, 128), vec![0, 128]);
    }

    #[test]
    fn straddling_word_touches_both_lines() {
        // One 8-byte word at address 28 crosses a 32B boundary.
        let a = MemAccess::scalar(0, 28, 8);
        assert_eq!(coalesce_lines(&a, 32), vec![0, 32]);
    }

    #[test]
    fn divergent_access_one_line_per_lane() {
        let a = MemAccess::strided(0, 0, 8, 1024, 4);
        assert_eq!(coalesce_lines(&a, 128).len(), 8);
    }

    #[test]
    fn duplicate_lane_addresses_merge() {
        let a = MemAccess::gather(0, vec![64, 64, 65, 66], 4);
        assert_eq!(coalesce_lines(&a, 32).len(), 1);
    }

    #[test]
    fn degree_reflects_efficiency() {
        let coalesced = MemAccess::coalesced(0, 0, 32, 4);
        let divergent = MemAccess::strided(0, 0, 32, 256, 4);
        assert!(coalescing_degree(&coalesced, 128) > 30.0);
        assert!((coalescing_degree(&divergent, 128) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn increasing_lanes_dedup_without_scanning() {
        // Sorted but non-contiguous: the increasing fast path must agree
        // with the general dedup (adjacent duplicates collapse).
        let a = MemAccess::gather(0, vec![0, 8, 40, 44, 100], 4);
        assert_eq!(coalesce_lines(&a, 32), vec![0, 32, 96]);
    }

    #[test]
    fn increasing_lanes_with_straddle_fall_back() {
        // Lanes 28 and 30 both straddle the 32B boundary: the increasing
        // fast path must bail so line 0 is not re-emitted after line 32.
        let a = MemAccess::gather(0, vec![28, 30], 8);
        assert_eq!(coalesce_lines(&a, 32), vec![0, 32]);
    }

    #[test]
    fn order_is_first_touch() {
        let a = MemAccess::gather(0, vec![300, 10, 200], 4);
        let lines = coalesce_lines(&a, 32);
        assert_eq!(lines, vec![288, 0, 192]);
    }
}
