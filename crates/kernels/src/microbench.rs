//! The paper's Listing 3 microbenchmark, used to demonstrate that
//! temporal and spatial inter-CTA locality can be harvested on L1
//! (Figure 2).
//!
//! Single-warp CTAs in which only the primary thread loads one word whose
//! address depends on the **physical SM id** (`input[32 * smid]`), so
//! every CTA landing on the same SM requests the same cache line while
//! CTAs on different SMs never share. The CTA count is chosen as
//! `SMs x CTA_slots x turnarounds`; the staggered variant delays each CTA
//! by `DELAY x blockIdx.x` cycles to de-align the concurrent CTAs'
//! accesses (spatial-reuse measurement).

use gpu_sim::{CtaContext, GpuConfig, KernelSpec, LaunchConfig, MemAccess, Op, Program};

/// The Listing 3 microbenchmark kernel.
#[derive(Debug, Clone)]
pub struct Microbench {
    /// Total CTAs to launch.
    pub ctas: u32,
    /// Staggered execution (Figure 2-(B)) vs default (Figure 2-(A)).
    pub staggered: bool,
    /// Stagger delay per CTA id, in cycles (the paper uses 1200).
    pub delay: u32,
}

impl Microbench {
    /// The paper's configuration for `cfg`: all CTA slots filled for
    /// `turnarounds` rounds (Listing 3 lines 18-21 use 4/4/2/2 rounds on
    /// Fermi/Kepler/Maxwell/Pascal).
    pub fn for_gpu(cfg: &GpuConfig, turnarounds: u32, staggered: bool) -> Self {
        Microbench {
            ctas: cfg.num_sms as u32 * cfg.cta_slots * turnarounds,
            staggered,
            delay: 1200,
        }
    }

    /// Explicit configuration.
    pub fn new(ctas: u32, staggered: bool, delay: u32) -> Self {
        Microbench {
            ctas,
            staggered,
            delay,
        }
    }
}

impl KernelSpec for Microbench {
    fn name(&self) -> String {
        format!(
            "microbench({} CTAs{})",
            self.ctas,
            if self.staggered { ", staggered" } else { "" }
        )
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(self.ctas, 32u32).with_regs(16)
    }

    fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
        let mut prog = Program::new();
        if self.staggered {
            // while(clock()-t0 < DELAY*bid): de-align concurrent CTAs.
            // The delay is folded modulo one SM's worth of stagger so the
            // simulated horizon stays reasonable on large grids.
            let rounds = (ctx.cta / ctx.num_sms as u64) as u32;
            prog.push(Op::Compute(self.delay.saturating_mul(rounds % 64)));
        }
        // tmp = input[32 * smid]: one 4-byte load by the primary thread.
        prog.push(Op::Load(MemAccess::scalar(0, 32 * 4 * ctx.sm_id as u64, 4)));
        prog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{arch, Simulation, VecSink};

    #[test]
    fn paper_cta_counts() {
        // Listing 3 lines 18-21.
        assert_eq!(Microbench::for_gpu(&arch::gtx570(), 4, false).ctas, 480);
        assert_eq!(Microbench::for_gpu(&arch::tesla_k40(), 4, false).ctas, 960);
        assert_eq!(Microbench::for_gpu(&arch::gtx980(), 2, false).ctas, 1024);
        assert_eq!(Microbench::for_gpu(&arch::gtx1080(), 2, false).ctas, 1280);
    }

    #[test]
    fn per_sm_addresses_never_alias() {
        let mb = Microbench::new(64, false, 0);
        let addr = |sm_id| {
            let ctx = CtaContext {
                cta: 0,
                sm_id,
                slot: 0,
                arrival: 0,
                num_sms: 15,
            };
            mb.warp_program(&ctx, 0)
                .iter()
                .find_map(|op| op.access().map(|a| a.addrs[0]))
                .unwrap()
        };
        assert_ne!(addr(0), addr(1));
        assert_eq!(addr(3), 3 * 128);
    }

    #[test]
    fn temporal_locality_visible_in_latencies() {
        // Figure 2-(A): first-turnaround CTAs see DRAM latency, later
        // turnarounds see ~L1 latency.
        let cfg = arch::gtx570();
        let mb = Microbench::for_gpu(&cfg, 4, false);
        let mut sink = VecSink::new();
        let stats = Simulation::new(cfg.clone(), &mb)
            .run_traced(&mut sink)
            .unwrap();
        assert_eq!(stats.placements.len(), 480);
        let slow = sink
            .events
            .iter()
            .filter(|e| e.latency > cfg.timings.l2_hit as u64)
            .count();
        let fast = sink
            .events
            .iter()
            .filter(|e| e.latency <= cfg.timings.l1_hit as u64 + 8)
            .count();
        // Only around one turnaround's worth of accesses can be slow.
        assert!(slow <= 480 / 3, "slow={slow}");
        assert!(fast >= 480 / 2, "fast={fast}");
    }
}
