//! Request planning: from a parsed [`Request`] to a `plan/v1` body.
//!
//! The default path is fully static — no cache or timing simulation:
//!
//! 1. Resolve the GPU preset and materialize the kernel (suite workload
//!    for `"app"`, a [`DescribedKernel`] for structural descriptions).
//! 2. Classify the locality source from the statically enumerated
//!    address streams ([`StaticProfile`]) and find the streaming tags.
//! 3. Assemble the clustering plan the way `Framework::plan` does
//!    (Figure 5's decision table), with the throttle seeded from the
//!    Table 2 optimum for named apps.
//! 4. Bound the predicted L1 hit rate with the sound static cost model
//!    ([`locality::AccessSummary::hit_interval`]).
//! 5. Gate the response through the analyzer's served-plan audit
//!    (CL401): a plan that fails the audit never leaves the server.
//!
//! `"mode":"measured"` additionally sweeps throttling degrees with real
//! simulations through the content-addressed program registry
//! ([`cluster_bench::AppPlan::with_content_key`]), so digest twins
//! share one traced program arena even across worker threads.

use crate::proto::{AccessKind, KernelRef, Mode, ProtoError, RawKernel, Request};
use cta_analyzer::plan::audit_served;
use cta_analyzer::{Report, StaticProfile};
use cta_clustering::{clamp_active_agents, Axis, Framework, Plan};
use gpu_kernels::{PartitionHint, Workload};
use gpu_sim::{arch, CtaContext, Dim3, GpuConfig, KernelSpec, LaunchConfig, MemAccess, Op};
use locality::{AccessSummary, HitInterval};

/// Resolves a normalized preset name (see [`crate::proto::normalize_gpu`])
/// to its [`GpuConfig`]. Covers the four Table 1 presets plus the
/// GTX 750 Ti used by the sectored-cache experiments.
pub fn resolve_gpu(normalized: &str) -> Option<GpuConfig> {
    match normalized {
        "GTX570" => Some(arch::gtx570()),
        "TESLAK40" | "K40" => Some(arch::tesla_k40()),
        "GTX980" => Some(arch::gtx980()),
        "GTX1080" => Some(arch::gtx1080()),
        "GTX750TI" => Some(arch::gtx750ti()),
        _ => None,
    }
}

/// Looks up a suite workload by abbreviation: the 23 Table 2 rows plus
/// the Figure 3 extras.
pub fn lookup_app(abbr: &str, cfg: &GpuConfig) -> Option<Box<dyn Workload>> {
    gpu_kernels::suite::by_abbr(abbr, cfg.arch).or_else(|| {
        gpu_kernels::suite::fig3_suite(cfg.arch)
            .into_iter()
            .find(|w| w.info().abbr == abbr)
    })
}

/// A kernel materialized from a structural description: every warp
/// performs the described access patterns at its grid position.
#[derive(Debug, Clone)]
pub struct DescribedKernel {
    raw: RawKernel,
}

impl DescribedKernel {
    /// Wraps a parsed description.
    pub fn new(raw: RawKernel) -> Self {
        DescribedKernel { raw }
    }
}

impl KernelSpec for DescribedKernel {
    fn name(&self) -> String {
        "described".into()
    }

    fn launch(&self) -> LaunchConfig {
        let [x, y, z] = self.raw.grid;
        LaunchConfig::new(Dim3::new(x, y, z), self.raw.block)
            .with_regs(self.raw.regs)
            .with_smem(self.raw.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Vec<Op> {
        let mut prog = Vec::with_capacity(self.raw.accesses.len());
        for a in &self.raw.accesses {
            for rep in 0..a.reps {
                let base = a.base
                    + ctx.cta * a.cta_stride
                    + warp as u64 * a.warp_stride
                    + rep as u64 * a.rep_stride;
                let acc = MemAccess::coalesced(a.tag, base, a.lanes, a.bytes);
                prog.push(match a.kind {
                    AccessKind::Load => Op::Load(acc),
                    AccessKind::Store => Op::Store(acc),
                });
            }
        }
        prog
    }
}

/// Everything a success response carries. Pure data: rendering it (with
/// the per-request correlation id patched in) is the cache-hit path.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanBody {
    /// App abbreviation for named requests.
    pub app: Option<String>,
    /// Normalized GPU preset name.
    pub gpu: String,
    /// The clustering plan.
    pub plan: Plan,
    /// Occupancy bound the throttle was validated against.
    pub max_agents: u32,
    /// Sound static L1 hit-rate bounds.
    pub hit: HitInterval,
    /// Warps per CTA at this GPU's warp width.
    pub warps_per_cta: u32,
    /// CTAs in the grid.
    pub ctas: u64,
}

impl PlanBody {
    /// Renders the response line for correlation id `id` (no trailing
    /// newline). Field order and float formatting are part of the
    /// protocol, pinned by the golden tests.
    pub fn render(&self, id: &str) -> String {
        use crate::proto::{json_escape, PROTO};
        let mut out = format!(
            "{{\"proto\":\"{PROTO}\",\"id\":\"{}\",\"gpu\":\"{}\"",
            json_escape(id),
            json_escape(&self.gpu)
        );
        if let Some(app) = &self.app {
            out.push_str(&format!(",\"app\":\"{}\"", json_escape(app)));
        }
        out.push_str(&format!(
            ",\"category\":\"{}\",\"exploit\":{},\"axis\":\"{}\"",
            self.plan.category, self.plan.exploit_locality, self.plan.axis
        ));
        match self.plan.active_agents {
            Some(n) => out.push_str(&format!(",\"active_agents\":{n}")),
            None => out.push_str(",\"active_agents\":null"),
        }
        out.push_str(&format!(",\"max_agents\":{}", self.max_agents));
        out.push_str(",\"bypass\":[");
        for (i, t) in self.plan.bypass.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.to_string());
        }
        out.push_str(&format!("],\"prefetch\":{}", self.plan.prefetch));
        out.push_str(&format!(
            ",\"hit_lo\":{:.6},\"hit_hi\":{:.6},\"reads\":{}",
            self.hit.lo, self.hit.hi, self.hit.reads
        ));
        out.push_str(&format!(
            ",\"warps_per_cta\":{},\"ctas\":{}}}",
            self.warps_per_cta, self.ctas
        ));
        out
    }
}

fn axis_of(hint: PartitionHint) -> Axis {
    match hint {
        PartitionHint::X => Axis::X,
        PartitionHint::Y => Axis::Y,
    }
}

fn plan_kernel<K: KernelSpec + ?Sized>(
    kernel: &K,
    cfg: &GpuConfig,
    axis: Axis,
    opt_agents: Option<u32>,
    app: Option<String>,
    subject: &str,
) -> Result<PlanBody, ProtoError> {
    kernel
        .launch()
        .validate()
        .map_err(|e| ProtoError::new("bad-kernel", e.to_string()))?;
    let fw = Framework::new(cfg.clone());
    let max_agents = fw
        .max_agents_for(kernel)
        .map_err(|e| ProtoError::new("bad-kernel", e.to_string()))?;
    let profile = StaticProfile::collect(kernel, cfg);
    let exploit = profile.category.exploitable();
    // Figure 5's decision table, as in `Framework::plan`: exploit plans
    // bypass the streaming arrays; unexploitable ones fall back to
    // cross-CTA prefetching.
    let plan = Plan {
        category: profile.category,
        axis,
        exploit_locality: exploit,
        active_agents: opt_agents.map(|n| clamp_active_agents(n, max_agents)),
        bypass: if exploit {
            fw.streaming_tags_static(kernel)
        } else {
            Vec::new()
        },
        prefetch: if exploit { 0 } else { 2 },
    };
    let mut report = Report::new();
    if !audit_served(&plan, &profile, max_agents, subject, &mut report) {
        let detail = report
            .diagnostics()
            .iter()
            .map(|d| format!("{}: {}", d.code, d.message))
            .collect::<Vec<_>>()
            .join("; ");
        return Err(ProtoError::new("audit", detail));
    }
    let hit = AccessSummary::collect_on(kernel, cfg).hit_interval(cfg);
    let launch = kernel.launch();
    Ok(PlanBody {
        app,
        gpu: crate::proto::normalize_gpu(&cfg.name),
        plan,
        max_agents,
        hit,
        warps_per_cta: launch.warps_per_cta(cfg.warp_size),
        ctas: launch.num_ctas(),
    })
}

/// Plans one request end to end. Deterministic: the result is a pure
/// function of the request's semantic fields, which is what makes the
/// content-addressed cache sound and responses byte-identical across
/// worker counts.
pub fn plan_request(req: &Request) -> Result<PlanBody, ProtoError> {
    let cfg = resolve_gpu(&req.gpu)
        .ok_or_else(|| ProtoError::new("unknown-gpu", format!("no preset named {:?}", req.gpu)))?;
    match &req.kernel {
        KernelRef::Named(abbr) => {
            let workload = lookup_app(abbr, &cfg).ok_or_else(|| {
                ProtoError::new("unknown-app", format!("no suite workload named {abbr:?}"))
            })?;
            let info = workload.info();
            let subject = format!("{}/{}", info.abbr, req.gpu);
            let mut body = plan_kernel(
                workload.as_ref(),
                &cfg,
                axis_of(info.partition),
                Some(info.opt_agents_for(cfg.arch)),
                Some(info.abbr.to_string()),
                &subject,
            )?;
            if req.mode == Mode::Measured {
                body.plan.active_agents = Some(measured_throttle(&cfg, workload, req)?);
            }
            Ok(body)
        }
        KernelRef::Raw(raw) => {
            // Structural descriptions carry no Table 2 hint; partition
            // along Y when the grid has rows to cluster (row-major CTA
            // ids make Y-neighbours address-adjacent), else X.
            let axis = if raw.grid[1] > 1 { Axis::Y } else { Axis::X };
            let kernel = DescribedKernel::new(raw.clone());
            let subject = format!("raw:{}/{}", req.digest(), req.gpu);
            plan_kernel(&kernel, &cfg, axis, None, None, &subject)
        }
    }
}

/// The measured path: sweep the phase-A throttling candidates with real
/// simulations and return the cycle-optimal `ACTIVE_AGENTS`. Uses the
/// content-addressed program registry so requests with equal digests
/// (and the phase's own variants) share one traced program arena.
fn measured_throttle(
    cfg: &GpuConfig,
    workload: Box<dyn Workload>,
    req: &Request,
) -> Result<u32, ProtoError> {
    let plan = cluster_bench::AppPlan::with_content_key(cfg, workload, req.digest());
    let stats = plan
        .phase_a()
        .into_iter()
        .map(|r| plan.run(r))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| ProtoError::new("bad-kernel", e.to_string()))?;
    Ok(plan.select_throttle(&stats).0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::parse_request;

    fn req(line: &str) -> Request {
        parse_request(line).expect("test request parses")
    }

    #[test]
    fn named_app_plans_match_table2_metadata() {
        let body = plan_request(&req(r#"{"id":"a","gpu":"GTX570","app":"MM"}"#)).expect("MM plans");
        assert_eq!(body.app.as_deref(), Some("MM"));
        assert!(body.plan.exploit_locality, "MM is exploitable");
        assert_eq!(body.plan.axis, Axis::Y, "Table 2 partitions MM along Y");
        let active = body
            .plan
            .active_agents
            .expect("named apps carry a throttle");
        assert!(active >= 1 && active <= body.max_agents);
        assert!(body.hit.lo >= 0.0 && body.hit.hi <= 1.0 && body.hit.lo <= body.hit.hi);
    }

    #[test]
    fn streaming_app_gets_prefetch_not_bypass() {
        let body = plan_request(&req(r#"{"id":"a","gpu":"GTX570","app":"BS"}"#)).expect("BS plans");
        assert!(!body.plan.exploit_locality);
        assert_eq!(body.plan.prefetch, 2);
        assert!(body.plan.bypass.is_empty());
    }

    #[test]
    fn raw_kernel_plans_deterministically() {
        let line = r#"{"id":"a","gpu":"GTX980","kernel":{"grid":[32,8],"block":64,
            "accesses":[{"tag":0,"base":0,"warp_stride":0,"reps":4},
                        {"tag":1,"base":1048576,"cta_stride":8192,"warp_stride":256}]}}"#;
        let a = plan_request(&req(line)).expect("raw kernel plans");
        let b = plan_request(&req(line)).expect("raw kernel plans again");
        assert_eq!(a, b);
        assert_eq!(a.plan.axis, Axis::Y, "multi-row grid partitions along Y");
        assert_eq!(a.plan.active_agents, None);
        assert_eq!(a.ctas, 256);
    }

    #[test]
    fn unknown_names_map_to_protocol_errors() {
        let e = plan_request(&req(r#"{"id":"a","gpu":"GTX570","app":"NOPE"}"#)).unwrap_err();
        assert_eq!(e.code, "unknown-app");
        let e = plan_request(&req(r#"{"id":"a","gpu":"RTX9090","app":"MM"}"#)).unwrap_err();
        assert_eq!(e.code, "unknown-gpu");
    }

    #[test]
    fn zero_cta_grid_is_a_bad_kernel() {
        let e = plan_request(&req(
            r#"{"id":"a","gpu":"GTX570","kernel":{"grid":[0],"block":32}}"#,
        ))
        .unwrap_err();
        assert_eq!(e.code, "bad-kernel");
    }

    #[test]
    fn response_rendering_is_stable() {
        let body = plan_request(&req(r#"{"id":"a","gpu":"GTX570","app":"NW"}"#)).unwrap();
        let line = body.render("r-9");
        assert!(line.starts_with(r#"{"proto":"plan/v1","id":"r-9","gpu":"GTX570","app":"NW""#));
        assert!(line.contains("\"hit_lo\":"));
        assert!(line.ends_with('}'));
        assert_eq!(line, body.render("r-9"), "rendering is a pure function");
    }
}
