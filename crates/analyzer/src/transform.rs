//! Pass family 1: transform invariants.
//!
//! Statically verifies the algebra the paper's correctness rests on:
//! `f`/`f⁻¹` mutual inversion and Eq. 3–5 balance for any
//! [`Partition`]-like map, permutation of the redirection transform, and
//! coverage/uniqueness/throttle-consistency of agent worklists.
//!
//! Passes run over small *capability traits* ([`PartitionMap`],
//! [`Redirector`], [`AgentSchedule`]) rather than the concrete types, so
//! the negative-test suite can feed deliberately broken implementations
//! and prove every lint actually fires. The real transforms implement the
//! traits by delegation.

use crate::diag::{
    Report, AGENT_COVERAGE, AGENT_OCCUPANCY_MISMATCH, AGENT_THROTTLE_LEAK, PARTITION_COVERAGE,
    PARTITION_NOT_INVERSE, PARTITION_UNBALANCED, REDIRECTION_NOT_PERMUTATION,
    THROTTLE_EXCEEDS_OCCUPANCY,
};
use cta_clustering::{AgentKernel, Partition, RedirectionKernel};
use gpu_sim::{occupancy, GpuConfig, KernelSpec};

/// Cap on per-lint example lines in one finding's message.
const MAX_EXAMPLES: usize = 3;

/// What the partition passes need from a partitioning scheme.
pub trait PartitionMap {
    /// Total CTAs `|V|`.
    fn total(&self) -> u64;
    /// Number of clusters `M`.
    fn num_clusters(&self) -> u64;
    /// `f(v) = (w, i)`.
    fn assign(&self, v: u64) -> (u64, u64);
    /// `f⁻¹(w, i) = v`.
    fn invert(&self, w: u64, i: u64) -> u64;
    /// CTAs in cluster `i`.
    fn cluster_size(&self, i: u64) -> u64;
}

impl PartitionMap for Partition {
    fn total(&self) -> u64 {
        Partition::total(self)
    }
    fn num_clusters(&self) -> u64 {
        Partition::num_clusters(self)
    }
    fn assign(&self, v: u64) -> (u64, u64) {
        Partition::assign(self, v)
    }
    fn invert(&self, w: u64, i: u64) -> u64 {
        Partition::invert(self, w, i)
    }
    fn cluster_size(&self, i: u64) -> u64 {
        Partition::cluster_size(self, i)
    }
}

/// What the redirection pass needs from a redirection scheme.
pub trait Redirector {
    /// Grid size `|V| = |N|`.
    fn total(&self) -> u64;
    /// The original CTA id new-kernel CTA `u` executes.
    fn redirect(&self, u: u64) -> u64;
}

impl<K: KernelSpec> Redirector for RedirectionKernel<K> {
    fn total(&self) -> u64 {
        self.partition().total()
    }
    fn redirect(&self, u: u64) -> u64 {
        RedirectionKernel::redirect(self, u)
    }
}

/// What the agent passes need from an agent-transformed kernel.
pub trait AgentSchedule {
    /// SMs (= clusters) the schedule spans.
    fn num_sms(&self) -> usize;
    /// Occupancy-bounded agents per SM.
    fn max_agents(&self) -> u32;
    /// Agents that execute tasks after throttling.
    fn active_agents(&self) -> u32;
    /// Original CTAs to cover.
    fn original_total(&self) -> u64;
    /// Tasks of cluster `sm_id` (its CTA count).
    fn cluster_size(&self, sm_id: usize) -> u64;
    /// Worklist of one agent, in execution order.
    fn tasks_of(&self, sm_id: usize, agent_id: u64) -> Vec<u64>;
}

impl<K: KernelSpec> AgentSchedule for AgentKernel<K> {
    fn num_sms(&self) -> usize {
        self.partition().num_clusters() as usize
    }
    fn max_agents(&self) -> u32 {
        AgentKernel::max_agents(self)
    }
    fn active_agents(&self) -> u32 {
        AgentKernel::active_agents(self)
    }
    fn original_total(&self) -> u64 {
        self.partition().total()
    }
    fn cluster_size(&self, sm_id: usize) -> u64 {
        self.partition().cluster_size(sm_id as u64)
    }
    fn tasks_of(&self, sm_id: usize, agent_id: u64) -> Vec<u64> {
        AgentKernel::tasks_of(self, sm_id, agent_id)
    }
}

/// Joins the first [`MAX_EXAMPLES`] example strings, noting elision.
fn examples(mut items: Vec<String>) -> String {
    let extra = items.len().saturating_sub(MAX_EXAMPLES);
    items.truncate(MAX_EXAMPLES);
    let mut s = items.join("; ");
    if extra > 0 {
        s.push_str(&format!("; and {extra} more"));
    }
    s
}

/// CL001–CL003: mutual inversion, balance bounds, coverage/uniqueness of
/// a partitioning scheme.
pub fn check_partition<P: PartitionMap + ?Sized>(p: &P, subject: &str, report: &mut Report) {
    report.note_subject();
    let total = p.total();
    let m = p.num_clusters();

    // CL002: Eq. 3–5 — every cluster is floor or ceil of |V|/M, the extra
    // CTAs land in the first |V| mod M clusters, and sizes sum to |V|.
    let small = total / m;
    let extra = total % m;
    let mut bad_sizes: Vec<String> = Vec::new();
    let mut sum = 0u64;
    for i in 0..m {
        let size = p.cluster_size(i);
        sum = sum.saturating_add(size);
        let expect = small + u64::from(i < extra);
        if size != expect {
            bad_sizes.push(format!("cluster {i}: size {size}, Eq. 5 expects {expect}"));
        }
    }
    if sum != total || !bad_sizes.is_empty() {
        if sum != total {
            bad_sizes.push(format!("sizes sum to {sum}, |V| = {total}"));
        }
        report.emit(&PARTITION_UNBALANCED, subject, examples(bad_sizes));
    }

    // CL001: f⁻¹(f(v)) == v for every v, and f(f⁻¹(w, i)) == (w, i) for
    // every valid cluster coordinate.
    let mut not_inverse: Vec<String> = Vec::new();
    for v in 0..total {
        let (w, i) = p.assign(v);
        if i >= m || w >= p.cluster_size(i) {
            not_inverse.push(format!("f({v}) = ({w}, {i}) is out of range"));
            continue;
        }
        let back = p.invert(w, i);
        if back != v {
            not_inverse.push(format!("f⁻¹(f({v})) = f⁻¹({w}, {i}) = {back}"));
        }
    }
    for i in 0..m {
        for w in 0..p.cluster_size(i) {
            let v = p.invert(w, i);
            if v >= total {
                not_inverse.push(format!("f⁻¹({w}, {i}) = {v} is outside the grid"));
            } else if p.assign(v) != (w, i) {
                let (w2, i2) = p.assign(v);
                not_inverse.push(format!("f(f⁻¹({w}, {i})) = f({v}) = ({w2}, {i2})"));
            }
        }
    }
    if !not_inverse.is_empty() {
        report.emit(&PARTITION_NOT_INVERSE, subject, examples(not_inverse));
    }

    // CL003: walking every cluster position must enumerate each original
    // CTA exactly once.
    let mut seen = vec![0u32; total as usize];
    for i in 0..m {
        for w in 0..p.cluster_size(i) {
            let v = p.invert(w, i);
            if v < total {
                seen[v as usize] += 1;
            }
        }
    }
    let bad: Vec<String> = seen
        .iter()
        .enumerate()
        .filter(|(_, &n)| n != 1)
        .map(|(v, &n)| format!("CTA {v} emitted {n} times"))
        .collect();
    if !bad.is_empty() {
        report.emit(&PARTITION_COVERAGE, subject, examples(bad));
    }
}

/// CL011: the redirection map must be a permutation of the grid.
pub fn check_redirection<R: Redirector + ?Sized>(r: &R, subject: &str, report: &mut Report) {
    report.note_subject();
    let total = r.total();
    let mut seen = vec![0u32; total as usize];
    let mut out_of_range: Vec<String> = Vec::new();
    for u in 0..total {
        let v = r.redirect(u);
        if v >= total {
            out_of_range.push(format!("redirect({u}) = {v} is outside the grid"));
        } else {
            seen[v as usize] += 1;
        }
    }
    let mut bad: Vec<String> = seen
        .iter()
        .enumerate()
        .filter(|(_, &n)| n != 1)
        .map(|(v, &n)| format!("original CTA {v} executed {n} times"))
        .collect();
    bad.extend(out_of_range);
    if !bad.is_empty() {
        report.emit(&REDIRECTION_NOT_PERMUTATION, subject, examples(bad));
    }
}

/// CL012–CL013 + CL026: agent worklist coverage, throttle consistency,
/// and the throttle range itself.
pub fn check_agents<A: AgentSchedule + ?Sized>(a: &A, subject: &str, report: &mut Report) {
    report.note_subject();
    let total = a.original_total();
    let active = a.active_agents();
    let max = a.max_agents();

    // CL026: the throttle itself must sit inside 1..=MAX_AGENTS. The
    // runtime repairs requests through `clamp_active_agents`; a schedule
    // carrying an unrepaired value escaped that path.
    if active == 0 || active > max {
        report.emit(
            &THROTTLE_EXCEEDS_OCCUPANCY,
            subject,
            format!(
                "ACTIVE_AGENTS = {active} outside 1..={max} (clamp_active_agents would give {})",
                cta_clustering::clamp_active_agents(active, max)
            ),
        );
    }

    // CL013: throttled-out agents must be idle, and an active agent `a`
    // of SM `s` must hold exactly the tasks `w ≡ a (mod ACTIVE_AGENTS)`
    // of its cluster — count `ceil((jobs - a) / ACTIVE_AGENTS)`.
    let mut leaks: Vec<String> = Vec::new();
    for sm in 0..a.num_sms() {
        let jobs = a.cluster_size(sm);
        for agent in 0..u64::from(max.max(active)) {
            let len = a.tasks_of(sm, agent).len() as u64;
            let expect = if active == 0 || agent >= u64::from(active) {
                0
            } else {
                jobs.saturating_sub(agent).div_ceil(u64::from(active))
            };
            if len != expect {
                leaks.push(format!(
                    "SM {sm} agent {agent}: {len} task(s), throttle at {active}/{max} expects {expect}"
                ));
            }
        }
    }
    if !leaks.is_empty() {
        report.emit(&AGENT_THROTTLE_LEAK, subject, examples(leaks));
    }

    // CL012: the union of all worklists is each original CTA exactly once.
    let mut seen = vec![0u32; total as usize];
    let mut out_of_range: Vec<String> = Vec::new();
    for sm in 0..a.num_sms() {
        for agent in 0..u64::from(max.max(active)) {
            for v in a.tasks_of(sm, agent) {
                if v >= total {
                    out_of_range.push(format!("SM {sm} agent {agent}: task {v} outside the grid"));
                } else {
                    seen[v as usize] += 1;
                }
            }
        }
    }
    let mut bad: Vec<String> = seen
        .iter()
        .enumerate()
        .filter(|(_, &n)| n != 1)
        .map(|(v, &n)| format!("CTA {v} emitted {n} times"))
        .collect();
    bad.extend(out_of_range);
    if !bad.is_empty() {
        report.emit(&AGENT_COVERAGE, subject, examples(bad));
    }
}

/// CL014: the constructed agent kernel must agree with the occupancy
/// model — `MAX_AGENTS` equals the occupancy CTA bound of the *inner*
/// launch, and the new grid is exactly `SMs × MAX_AGENTS`.
pub fn check_agent_occupancy<K: KernelSpec>(
    agents: &AgentKernel<K>,
    cfg: &GpuConfig,
    subject: &str,
    report: &mut Report,
) {
    report.note_subject();
    let mut bad: Vec<String> = Vec::new();
    match occupancy(cfg, &agents.inner().launch()) {
        Ok(occ) => {
            if agents.max_agents() != occ.ctas_per_sm {
                bad.push(format!(
                    "MAX_AGENTS = {} but occupancy bounds {} CTAs per SM",
                    agents.max_agents(),
                    occ.ctas_per_sm
                ));
            }
        }
        Err(e) => bad.push(format!("inner kernel is unschedulable: {e}")),
    }
    let expect_grid = cfg.num_sms as u64 * u64::from(agents.max_agents());
    let grid = agents.launch().num_ctas();
    if grid != expect_grid {
        bad.push(format!(
            "launch grid has {grid} CTAs, SMs × MAX_AGENTS = {expect_grid}"
        ));
    }
    if !bad.is_empty() {
        report.emit(&AGENT_OCCUPANCY_MISMATCH, subject, examples(bad));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{arch, CtaContext, Dim3, LaunchConfig, MemAccess, Op, Program};

    #[derive(Debug, Clone)]
    struct Probe {
        grid: Dim3,
    }

    impl KernelSpec for Probe {
        fn name(&self) -> String {
            "probe".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(self.grid, 32u32)
        }
        fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
            vec![Op::Load(MemAccess::scalar(0, ctx.cta * 4, 4))]
        }
    }

    #[test]
    fn real_partition_is_clean_under_every_indexing() {
        use cta_clustering::Indexing;
        let grid = Dim3::plane(7, 5);
        for indexing in [
            Indexing::RowMajor,
            Indexing::ColMajor,
            Indexing::Tile {
                tile_x: 3,
                tile_y: 2,
            },
            Indexing::Custom((0..35).rev().collect()),
        ] {
            for m in [1u64, 4, 35, 40] {
                let p = Partition::new(grid, m, indexing.clone()).unwrap();
                let mut r = Report::new();
                check_partition(&p, "t", &mut r);
                assert_eq!(
                    r.deny_count(),
                    0,
                    "{indexing:?} M={m}: {}",
                    r.render_human()
                );
            }
        }
    }

    #[test]
    fn real_redirection_and_agents_are_clean() {
        let cfg = arch::gtx570();
        let probe = Probe {
            grid: Dim3::plane(16, 10),
        };
        let p = Partition::y(probe.launch().grid, cfg.num_sms as u64).unwrap();
        let rd = RedirectionKernel::new(probe.clone(), p.clone());
        let agents = AgentKernel::with_partition(probe, &cfg, p)
            .unwrap()
            .with_active_agents(3)
            .unwrap();
        let mut r = Report::new();
        check_redirection(&rd, "t/RD", &mut r);
        check_agents(&agents, "t/CLU", &mut r);
        check_agent_occupancy(&agents, &cfg, "t/CLU", &mut r);
        assert_eq!(r.deny_count(), 0, "{}", r.render_human());
        assert_eq!(r.subjects_checked(), 3);
    }

    /// A partition whose inverse only knows cluster 0: `assign` spreads
    /// CTAs over 4 clusters but every cluster except 0 is empty — breaks
    /// balance and inversion at once.
    struct Degenerate {
        total: u64,
        clusters: u64,
    }

    impl PartitionMap for Degenerate {
        fn total(&self) -> u64 {
            self.total
        }
        fn num_clusters(&self) -> u64 {
            self.clusters
        }
        fn assign(&self, v: u64) -> (u64, u64) {
            (v % 3, v / 3)
        }
        fn invert(&self, w: u64, i: u64) -> u64 {
            (i * 3 + w) % self.total
        }
        fn cluster_size(&self, i: u64) -> u64 {
            if i == 0 {
                self.total
            } else {
                0
            }
        }
    }

    #[test]
    fn degenerate_partition_fires_all_partition_lints() {
        let mut r = Report::new();
        check_partition(
            &Degenerate {
                total: 12,
                clusters: 4,
            },
            "neg",
            &mut r,
        );
        assert!(r.has(&PARTITION_UNBALANCED));
        assert!(r.has(&PARTITION_NOT_INVERSE));
        // Coverage over the degenerate walk: cluster 0 holds all 12 once,
        // others empty — so coverage alone passes; inversion/balance carry
        // the failure. Force coverage with a duplicating inverse:
        struct Dup;
        impl PartitionMap for Dup {
            fn total(&self) -> u64 {
                4
            }
            fn num_clusters(&self) -> u64 {
                2
            }
            fn assign(&self, v: u64) -> (u64, u64) {
                (v % 2, v / 2)
            }
            fn invert(&self, w: u64, i: u64) -> u64 {
                (i * 2 + w) & !1 // always even: 0 and 2 duplicated, 1 and 3 missed
            }
            fn cluster_size(&self, _i: u64) -> u64 {
                2
            }
        }
        let mut r2 = Report::new();
        check_partition(&Dup, "neg", &mut r2);
        assert!(r2.has(&PARTITION_COVERAGE));
    }

    struct BadRedirect;
    impl Redirector for BadRedirect {
        fn total(&self) -> u64 {
            6
        }
        fn redirect(&self, u: u64) -> u64 {
            u / 2 // collapses pairs: not a permutation
        }
    }

    #[test]
    fn broken_redirection_fires_cl011() {
        let mut r = Report::new();
        check_redirection(&BadRedirect, "neg", &mut r);
        assert!(r.has(&REDIRECTION_NOT_PERMUTATION));
        let d = r.diagnostics()[0].clone();
        assert!(d.message.contains("executed 2 times"), "{}", d.message);
    }

    /// Agent schedule that ignores throttling: retired agents keep
    /// working, so CTAs are emitted twice.
    struct LeakySchedule;
    impl AgentSchedule for LeakySchedule {
        fn num_sms(&self) -> usize {
            2
        }
        fn max_agents(&self) -> u32 {
            2
        }
        fn active_agents(&self) -> u32 {
            1
        }
        fn original_total(&self) -> u64 {
            8
        }
        fn cluster_size(&self, _sm: usize) -> u64 {
            4
        }
        fn tasks_of(&self, sm_id: usize, agent_id: u64) -> Vec<u64> {
            if agent_id >= 2 {
                return Vec::new();
            }
            // Every agent (even throttled-out agent 1) walks the whole
            // cluster.
            (0..4).map(|w| sm_id as u64 * 4 + w).collect()
        }
    }

    #[test]
    fn throttle_leak_fires_cl012_and_cl013() {
        let mut r = Report::new();
        check_agents(&LeakySchedule, "neg", &mut r);
        assert!(r.has(&AGENT_THROTTLE_LEAK));
        assert!(r.has(&AGENT_COVERAGE));
    }

    /// Schedule with an unrepaired out-of-range throttle.
    struct OverThrottled;
    impl AgentSchedule for OverThrottled {
        fn num_sms(&self) -> usize {
            1
        }
        fn max_agents(&self) -> u32 {
            4
        }
        fn active_agents(&self) -> u32 {
            9
        }
        fn original_total(&self) -> u64 {
            9
        }
        fn cluster_size(&self, _sm: usize) -> u64 {
            9
        }
        fn tasks_of(&self, _sm: usize, agent_id: u64) -> Vec<u64> {
            (agent_id..9).step_by(9).collect()
        }
    }

    #[test]
    fn out_of_range_throttle_fires_cl026() {
        let mut r = Report::new();
        check_agents(&OverThrottled, "neg", &mut r);
        assert!(r.has(&THROTTLE_EXCEEDS_OCCUPANCY));
        // Coverage is fine (each CTA once), so CL012 stays quiet.
        assert!(!r.has(&AGENT_COVERAGE));
    }

    #[test]
    fn examples_elide_beyond_cap() {
        let msg = examples((0..10).map(|i| format!("e{i}")).collect());
        assert!(msg.contains("e0; e1; e2; and 7 more"));
    }
}
