//! DXT — DXT1 texture compression (CUDA SDK `dxtc`).
//!
//! Register-heavy streaming (Table 2: up to 91 regs/thread): each CTA
//! compresses its own 4x4-texel blocks, reading every input word exactly
//! once and writing a compact output. No inter-CTA reuse.

use crate::common::{read_words, write_words};
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, KernelSpec, LaunchConfig, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "DXT",
    full_name: "dxtc",
    description: "High quality DXT compression",
    category: PaperCategory::Streaming,
    warps_per_cta: 2,
    partition: PartitionHint::X,
    opt_agents: [8, 8, 10, 10],
    regs: [63, 89, 89, 91],
    smem: 2048,
    source: "CUDA SDK",
};

const TAG_TEXELS: u16 = 0;
const TAG_BLOCKS: u16 = 1;

/// The DXT compression workload model.
#[derive(Debug, Clone)]
pub struct Dxtc {
    /// CTAs in the 1D grid.
    pub grid: u32,
    /// 64-word texel tiles per CTA.
    pub tiles: u32,
    /// Registers per thread.
    pub regs: u32,
}

impl Dxtc {
    /// Default evaluation-scale instance for `arch`.
    pub fn for_arch(arch: ArchGen) -> Self {
        Dxtc {
            grid: 320,
            tiles: 6,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance.
    pub fn new(grid: u32, tiles: u32) -> Self {
        Dxtc {
            grid,
            tiles,
            regs: INFO.regs[0],
        }
    }
}

impl KernelSpec for Dxtc {
    fn name(&self) -> String {
        format!("DXT(grid={},t{})", self.grid, self.tiles)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(self.grid, 64u32)
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let mut prog = Program::new();
        for t in 0..self.tiles as u64 {
            let word = ((ctx.cta * self.tiles as u64 + t) * 2 + warp as u64) * 32;
            prog.push(read_words(TAG_TEXELS, word, 32));
            prog.push(Op::Compute(40)); // endpoint search is compute-heavy
        }
        prog.push(Op::Barrier);
        // 8:1 compression: one 8-word output block per warp-tile.
        let out = (ctx.cta * 2 + warp as u64) * 8;
        prog.push(write_words(TAG_BLOCKS, out, 8));
        prog
    }
}

impl Workload for Dxtc {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch;

    #[test]
    fn register_pressure_limits_occupancy() {
        // 89 regs x 64 threads = 5696 regs/CTA on Kepler: 64K/5696 = 11,
        // but Table 2 caps at CTA slots... verify the model is at least
        // register-sensitive on Fermi: 63*64 = 4032 -> 32K/4032 = 8.
        let cfg = arch::gtx570();
        let d = Dxtc::for_arch(ArchGen::Fermi);
        assert_eq!(
            gpu_sim::occupancy(&cfg, &d.launch()).unwrap().ctas_per_sm,
            8
        );
    }

    #[test]
    fn output_is_compressed() {
        let d = Dxtc::new(2, 1);
        let ctx = CtaContext {
            cta: 0,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        };
        let p = d.warp_program(&ctx, 0);
        let read: usize = p
            .iter()
            .filter_map(|op| match op {
                Op::Load(a) => Some(a.addrs.len()),
                _ => None,
            })
            .sum();
        let written: usize = p
            .iter()
            .filter_map(|op| match op {
                Op::Store(a) => Some(a.addrs.len()),
                _ => None,
            })
            .sum();
        assert_eq!(read, 4 * written);
    }
}
