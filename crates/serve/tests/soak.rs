//! Concurrency soak: N client threads hammer one in-process server with
//! a duplicate-heavy mixed workload (valid named requests, structural
//! kernels, twins that share a digest, malformed lines, unknown apps)
//! and every client must read back exactly the serial transcript, while
//! the observability counters obey their conservation laws.
//!
//! Everything lives in **one** test function: obs counters are global,
//! so splitting the phases across `#[test]` functions would race their
//! accounting. The test is deadline-free and wall-clock-free — it
//! asserts only on ordering, byte equality and counter algebra, never on
//! elapsed time — so it cannot flake on a loaded single-core CI box.

use cta_serve::{Server, ServerConfig};
use std::sync::Arc;

/// The soak workload: `rounds` passes over a mixed template set. The mix
/// deliberately repeats digests both within a round (`MM` appears under
/// two ids) and across rounds (every round reuses all templates), and
/// includes the error paths (malformed JSON, unknown app) so error
/// responses are exercised under contention too.
fn soak_lines(rounds: usize) -> Vec<String> {
    let mut lines = Vec::new();
    for r in 0..rounds {
        for (i, body) in [
            r#""gpu":"GTX570","app":"MM""#.to_string(),
            r#""gpu":"GTX570","app":"NW""#.to_string(),
            r#""gpu":"GTX980","app":"BS""#.to_string(),
            r#""gpu":"gtx 570","app":"mm""#.to_string(), // digest twin of MM
            r#""gpu":"GTX980","kernel":{"grid":[64,4],"block":64,"accesses":[{"tag":0,"base":0,"cta_stride":128,"warp_stride":256}]}"#
                .to_string(),
            r#""gpu":"GTX570","app":"NOPE""#.to_string(), // cached error
        ]
        .into_iter()
        .enumerate()
        {
            lines.push(format!(r#"{{"id":"s{r}x{i}",{body}}}"#));
        }
        lines.push("{not json".into()); // parse error, never cached
    }
    lines
}

#[test]
fn concurrent_soak_matches_serial_and_conserves_counters() {
    cta_obs::force_enable();
    let obs = cta_obs::maybe_global().expect("forced on");
    let before = obs.snapshot();

    let rounds = 24;
    let lines = soak_lines(rounds);
    let distinct_cached = 5u64; // MM, NW, BS, the structural kernel, NOPE
    let cached_per_round = 6u64; // every line but the parse failure

    // Serial ground truth from its own server (its own cold cache).
    let serial = Server::new(ServerConfig {
        threads: 1,
        queue_cap: 0,
        ..ServerConfig::default()
    })
    .handle_batch(&lines);
    assert_eq!(serial.len(), lines.len());

    // One shared server; 8 client threads each run the full mixed
    // workload concurrently through the batch path and through raw
    // `answer` calls, all against the same cache.
    let shared = Arc::new(Server::new(ServerConfig {
        threads: 2,
        queue_cap: 0,
        ..ServerConfig::default()
    }));
    let clients = 8usize;
    let transcripts: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let server = Arc::clone(&shared);
                let lines = &lines;
                scope.spawn(move || {
                    if c % 2 == 0 {
                        server.handle_batch(lines)
                    } else {
                        lines.iter().map(|l| server.answer(l, None)).collect()
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    for (c, transcript) in transcripts.iter().enumerate() {
        assert_eq!(
            transcript, &serial,
            "client {c} must read the exact serial transcript"
        );
    }

    // Cache conservation on the shared server: every cacheable request
    // consulted the cache, each distinct digest filled exactly once no
    // matter how 8 clients interleaved, and hits + misses == lookups.
    let stats = shared.cache_stats();
    let expected_lookups = cached_per_round * rounds as u64 * clients as u64;
    assert_eq!(stats.lookups, expected_lookups);
    assert_eq!(stats.misses, distinct_cached, "one fill per digest");
    assert_eq!(stats.hits + stats.misses, stats.lookups);
    assert_eq!(shared.cache().len(), distinct_cached as usize);

    // Obs conservation across serial + concurrent phases: one response
    // per request, split exactly into plans and errors; cache counter
    // deltas mirror both servers' local accounting (serial run: same
    // lookups once, 5 misses of its own cold cache).
    let after = obs.snapshot();
    let d = |name: &str, key: &str| after.counter(name, key) - before.counter(name, key);
    let dt = |name: &str| after.counter_total(name) - before.counter_total(name);
    let total_requests = lines.len() as u64 * (clients as u64 + 1);
    assert_eq!(dt("serve/requests"), total_requests);
    assert_eq!(
        dt("serve/responses"),
        total_requests,
        "every request is answered exactly once"
    );
    assert_eq!(
        d("serve/responses", "plan") + d("serve/responses", "error"),
        total_requests
    );
    assert_eq!(
        d("serve/responses", "error"),
        2 * rounds as u64 * (clients as u64 + 1),
        "per pass: one parse failure + one unknown app"
    );
    let serial_lookups = cached_per_round * rounds as u64;
    assert_eq!(dt("serve/cache"), expected_lookups + serial_lookups);
    assert_eq!(
        d("serve/cache", "miss"),
        2 * distinct_cached,
        "two cold caches, one fill per digest each"
    );
    assert_eq!(
        d("serve/cache", "hit") + d("serve/cache", "miss"),
        dt("serve/cache")
    );
    // Latency is recorded for every request that survives parsing
    // (parse failures return before the timed section).
    let parse_failures = rounds as u64 * (clients as u64 + 1);
    assert_eq!(
        after.hist_mass("time/serve/latency_us") - before.hist_mass("time/serve/latency_us"),
        total_requests - parse_failures
    );

    // The stream path over the same mix agrees with the batch path on
    // the warmed shared server, and its summary balances.
    let input: String = lines.iter().map(|l| format!("{l}\n")).collect();
    let mut out = Vec::new();
    let summary = shared
        .serve_lines(input.as_bytes(), &mut out)
        .expect("stream session");
    assert_eq!(summary.requests, lines.len() as u64);
    assert_eq!(summary.responses, summary.requests);
    assert_eq!(summary.shed, 0);
    let expect: String = serial.iter().map(|l| format!("{l}\n")).collect();
    assert_eq!(String::from_utf8(out).expect("utf8"), expect);
}
