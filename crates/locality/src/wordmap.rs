//! Paged word-indexed storage for the stream profilers.
//!
//! The profilers key their state by *word index* (`addr / 4`), and the
//! access streams they observe are overwhelmingly dense: a coalesced warp
//! instruction touches 32 consecutive words, and successive instructions
//! walk consecutive lines. A general-purpose hash map serves that pattern
//! one cache miss per lane — on streaming kernels the map grows to
//! millions of entries and the probe run costs more than the simulation
//! it observes. `WordMap` stores values in fixed-size pages indexed by
//! the high bits of the word index, so neighbouring words share cache
//! lines, and memoizes the last page so the per-lane fast path is a
//! compare plus an array index, no hashing at all.
//!
//! The map is insert-only and value slots are materialized eagerly per
//! page: a freshly-created slot is `V::default()`, and callers encode
//! presence in the value itself (every profiler already carries a
//! "touched" sentinel). Aggregation results are therefore identical to a
//! hash-map-backed implementation; only the memory layout differs.

use gpu_sim::FxHashMap;

/// log2 of the page size in words: 1024 words = 4 KiB of address space.
const PAGE_SHIFT: u32 = 10;
const PAGE_WORDS: usize = 1 << PAGE_SHIFT;
const NO_PAGE: u32 = u32::MAX;

/// Insert-only sparse array keyed by word index, paged for locality.
#[derive(Debug)]
pub(crate) struct WordMap<V> {
    /// Page id (`word >> PAGE_SHIFT`) to index into `pages`.
    index: FxHashMap<u64, u32>,
    pages: Vec<Box<[V]>>,
    /// Memoized resolution of the most recent `slot` call.
    last_page: u64,
    last_idx: u32,
}

impl<V: Default + Clone> Default for WordMap<V> {
    fn default() -> Self {
        WordMap {
            index: FxHashMap::default(),
            pages: Vec::new(),
            last_page: 0,
            last_idx: NO_PAGE,
        }
    }
}

impl<V: Default + Clone> WordMap<V> {
    /// The value slot for `word`, creating its page on first touch.
    #[inline]
    pub(crate) fn slot(&mut self, word: u64) -> &mut V {
        let page = word >> PAGE_SHIFT;
        if self.last_idx == NO_PAGE || self.last_page != page {
            let pages = &mut self.pages;
            let idx = *self.index.entry(page).or_insert_with(|| {
                pages.push(vec![V::default(); PAGE_WORDS].into_boxed_slice());
                (pages.len() - 1) as u32
            });
            self.last_page = page;
            self.last_idx = idx;
        }
        &mut self.pages[self.last_idx as usize][(word & (PAGE_WORDS as u64 - 1)) as usize]
    }

    /// Read-only probe: the slot for `word` if its page exists. A slot
    /// that was never written reads as `V::default()` — callers
    /// distinguish via their presence sentinel, exactly as they would
    /// treat a hash-map miss.
    #[inline]
    pub(crate) fn get(&self, word: u64) -> Option<&V> {
        let idx = *self.index.get(&(word >> PAGE_SHIFT))?;
        Some(&self.pages[idx as usize][(word & (PAGE_WORDS as u64 - 1)) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_persist_and_default() {
        let mut m: WordMap<u64> = WordMap::default();
        assert_eq!(m.get(7), None);
        *m.slot(7) = 42;
        assert_eq!(m.get(7), Some(&42));
        // Same page, untouched slot: default, not absent.
        assert_eq!(m.get(8), Some(&0));
        // Different page.
        assert_eq!(m.get(7 + (1 << 20)), None);
        *m.slot(7 + (1 << 20)) = 9;
        assert_eq!(m.get(7 + (1 << 20)), Some(&9));
        // The memoized page still resolves correctly after switching back.
        assert_eq!(*m.slot(7), 42);
    }

    #[test]
    fn page_boundaries_do_not_alias() {
        let mut m: WordMap<u32> = WordMap::default();
        let last_of_page = (PAGE_WORDS - 1) as u64;
        *m.slot(last_of_page) = 1;
        *m.slot(last_of_page + 1) = 2;
        assert_eq!(m.get(last_of_page), Some(&1));
        assert_eq!(m.get(last_of_page + 1), Some(&2));
    }
}
