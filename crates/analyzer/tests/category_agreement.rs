//! Agreement test: the statically derived locality category (walked
//! warp programs, no timing model) must match the dynamic one (the same
//! profiler fed from a traced simulation run) for the 23 Table 2 apps.
//!
//! The two feeds observe the same accesses in different interleavings
//! (static is CTA-major; the simulator interleaves by cycle), so this
//! test is the proof that the classification is order-robust on the
//! suite the paper evaluates. One architecture suffices — the
//! quantification is data-driven (paper §3.2); Kepler is the preset the
//! Figure 3 harness profiles on.

use cluster_bench::runner::SharedKernel;
use cta_analyzer::StaticProfile;
use gpu_sim::{arch, Simulation};
use locality::CategoryProfiler;

/// Reference line size the static profile is defined over.
const LINE_BYTES: u64 = 128;

#[test]
fn static_and_dynamic_categories_agree_on_table2() {
    let mut disagreements = Vec::new();
    let base = arch::tesla_k40();
    for w in gpu_kernels::suite::table2_suite(base.arch) {
        let kernel = SharedKernel::new(w);
        let info = kernel.info();
        let cfg = base.prefer_l1(gpu_sim::KernelSpec::launch(&kernel).smem_per_cta);

        let static_cat = StaticProfile::collect(&kernel, &cfg).category;

        let mut dynamic = CategoryProfiler::with_line_bytes(LINE_BYTES);
        Simulation::new(cfg.clone(), &kernel)
            .run_traced(&mut dynamic)
            .unwrap_or_else(|e| panic!("{} on {}: {e}", info.abbr, cfg.name));
        let dynamic_cat = dynamic.classify();

        if static_cat != dynamic_cat {
            disagreements.push(format!(
                "{}/{}: static {static_cat}, dynamic {dynamic_cat}",
                info.abbr, cfg.name
            ));
        }
    }
    assert!(
        disagreements.is_empty(),
        "static vs dynamic category disagreements:\n{}",
        disagreements.join("\n")
    );
}
