//! Run-level statistics: the simulator's equivalent of the CUDA profiler
//! metrics the paper reports (L1 hit rate, L2 transactions, achieved
//! occupancy, elapsed cycles).

use crate::cache::CacheStats;
use crate::memory::MemoryStats;

/// Placement record of one CTA: where and when it ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtaPlacement {
    /// Linear CTA id within the launched grid.
    pub cta: u64,
    /// SM the CTA ran on.
    pub sm_id: usize,
    /// Hardware CTA slot it occupied.
    pub slot: u32,
    /// Dispatch cycle.
    pub dispatched: u64,
    /// Retire cycle.
    pub retired: u64,
}

/// Aggregated results of one kernel simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Kernel name.
    pub kernel: String,
    /// GPU name.
    pub gpu: String,
    /// Total elapsed cycles (kernel wall-clock in the paper's speedup
    /// figures).
    pub cycles: u64,
    /// Warp instructions issued.
    pub instructions: u64,
    /// Aggregated L1 statistics over all SMs and sectors.
    pub l1: CacheStats,
    /// L1 statistics per SM (sectors aggregated). Summing these equals
    /// [`RunStats::l1`]; the telemetry conservation tests pin that.
    pub per_sm_l1: Vec<CacheStats>,
    /// Per-SM count of L2-line transactions issued by loads that bypassed
    /// L1 (explicit `BypassL1` cache op, or L1 disabled).
    pub l1_bypass_per_sm: Vec<u64>,
    /// Aggregated L2 cache-array statistics over all banks.
    pub l2: CacheStats,
    /// Device memory-system counters (L2/DRAM transactions).
    pub memory: MemoryStats,
    /// Achieved occupancy: average resident warps per cycle divided by the
    /// SM warp slots (the `AC_OCP` series of Figure 12).
    pub achieved_occupancy: f64,
    /// CTAs executed per SM (workload balance; the paper observes the
    /// hardware scheduler does *not* balance perfectly, §3.1-(3)).
    pub ctas_per_sm: Vec<u64>,
    /// Occupancy bound used for dispatch (max CTAs per SM).
    pub max_ctas_per_sm: u32,
    /// Per-CTA placements, in dispatch order.
    pub placements: Vec<CtaPlacement>,
}

impl RunStats {
    /// The paper's headline cache metric: total L2 transactions.
    pub fn l2_transactions(&self) -> u64 {
        self.memory.l2_transactions()
    }

    /// L1 read hit rate (reserved hits count as hits, matching nvprof).
    pub fn l1_hit_rate(&self) -> f64 {
        self.l1.read_hit_rate()
    }

    /// Speedup of this run relative to a baseline run of the same kernel
    /// (baseline cycles / these cycles).
    pub fn speedup_vs(&self, baseline: &RunStats) -> f64 {
        baseline.cycles as f64 / self.cycles as f64
    }

    /// Normalized L2 transactions relative to a baseline (Figure 13's
    /// y-axis).
    pub fn l2_txns_vs(&self, baseline: &RunStats) -> f64 {
        if baseline.l2_transactions() == 0 {
            return 1.0;
        }
        self.l2_transactions() as f64 / baseline.l2_transactions() as f64
    }

    /// SM id that executed the given CTA, if it ran.
    pub fn sm_of(&self, cta: u64) -> Option<usize> {
        self.placements
            .iter()
            .find(|p| p.cta == cta)
            .map(|p| p.sm_id)
    }

    /// All CTAs that ran on `sm_id`, in dispatch order.
    pub fn ctas_on_sm(&self, sm_id: usize) -> Vec<u64> {
        self.placements
            .iter()
            .filter(|p| p.sm_id == sm_id)
            .map(|p| p.cta)
            .collect()
    }

    /// Emits this run's telemetry onto a recorder: per-SM L1
    /// hit/reserved/miss/eviction/bypass counters (keys `{scope}/smN`),
    /// each eviction count split into clean vs dirty (writeback), plus
    /// run-level cycle, instruction, L2-transaction and L2-eviction
    /// counters (key `{scope}`). Purely observational — reads `self`,
    /// mutates nothing — so recording cannot perturb the simulation it
    /// reports on.
    pub fn record_obs(&self, obs: &cta_obs::Obs, scope: &str) {
        for (i, sm) in self.per_sm_l1.iter().enumerate() {
            let key = format!("{scope}/sm{i}");
            obs.counter("sim/l1_reads", &key, sm.reads);
            obs.counter("sim/l1_hits", &key, sm.read_hits);
            obs.counter("sim/l1_reserved", &key, sm.read_reserved);
            obs.counter("sim/l1_misses", &key, sm.read_misses);
            obs.counter("sim/l1_evictions", &key, sm.evictions);
            obs.counter("sim/l1_evictions_clean", &key, sm.clean_evictions());
            obs.counter("sim/l1_evictions_dirty", &key, sm.dirty_evictions());
            obs.counter(
                "sim/l1_bypass",
                &key,
                self.l1_bypass_per_sm.get(i).copied().unwrap_or(0),
            );
        }
        obs.counter("sim/cycles", scope, self.cycles);
        obs.counter("sim/instructions", scope, self.instructions);
        obs.counter("sim/l2_transactions", scope, self.l2_transactions());
        obs.counter("sim/l2_evictions_clean", scope, self.l2.clean_evictions());
        obs.counter("sim/l2_evictions_dirty", scope, self.l2.dirty_evictions());
    }
}

/// Geometric mean of an iterator of positive ratios; the aggregation the
/// paper uses for its per-category speedup summaries ("G-M" bars).
pub fn geometric_mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        assert!(v > 0.0, "geometric mean requires positive values");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return 1.0;
    }
    (log_sum / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(cycles: u64, l2_reads: u64) -> RunStats {
        RunStats {
            kernel: "k".into(),
            gpu: "g".into(),
            cycles,
            instructions: 0,
            l1: CacheStats::default(),
            per_sm_l1: vec![],
            l1_bypass_per_sm: vec![],
            l2: CacheStats::default(),
            memory: MemoryStats {
                l2_read_txns: l2_reads,
                ..MemoryStats::default()
            },
            achieved_occupancy: 0.5,
            ctas_per_sm: vec![],
            max_ctas_per_sm: 1,
            placements: vec![CtaPlacement {
                cta: 0,
                sm_id: 3,
                slot: 0,
                dispatched: 0,
                retired: cycles,
            }],
        }
    }

    #[test]
    fn speedup_and_normalization() {
        let base = dummy(1000, 100);
        let opt = dummy(500, 40);
        assert!((opt.speedup_vs(&base) - 2.0).abs() < 1e-12);
        assert!((opt.l2_txns_vs(&base) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn placement_lookup() {
        let s = dummy(10, 0);
        assert_eq!(s.sm_of(0), Some(3));
        assert_eq!(s.sm_of(99), None);
        assert_eq!(s.ctas_on_sm(3), vec![0]);
        assert!(s.ctas_on_sm(0).is_empty());
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean([]) - 1.0).abs() < 1e-12);
        assert!((geometric_mean([1.5]) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_nonpositive() {
        geometric_mean([1.0, 0.0]);
    }
}
