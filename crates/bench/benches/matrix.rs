//! Criterion benchmark of the evaluation harness itself: a reduced
//! app × architecture matrix through the serial path (1 thread, the
//! legacy inline loop) versus the parallel worker pool.
//!
//! On a multi-core host the parallel rows should approach
//! `serial / min(threads, jobs)`; on a single core they show the
//! (small) queueing overhead of the pool instead.

use cluster_bench::par::evaluate_apps_par;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::{arch, GpuConfig};

const APPS: [&str; 3] = ["NW", "BS", "HS"];

fn archs() -> [GpuConfig; 2] {
    [arch::gtx570(), arch::gtx980()]
}

fn run_matrix(threads: usize) {
    for cfg in archs() {
        let workloads = APPS
            .iter()
            .map(|a| gpu_kernels::suite::by_abbr(a, cfg.arch).expect("suite app"))
            .collect();
        let evals = evaluate_apps_par(&cfg, workloads, threads).expect("matrix evaluation");
        assert_eq!(evals.len(), APPS.len());
    }
}

fn bench_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix_3apps_2archs");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let label = if threads == 1 {
            "serial".to_string()
        } else {
            format!("par_{threads}_threads")
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &threads, |b, &t| {
            b.iter(|| run_matrix(t))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matrix);
criterion_main!(benches);
