//! Shared harness machinery: the optimization variants of Figure 12/13
//! and the code that runs a workload under each of them.
//!
//! The evaluation of one app decomposes into independent simulations
//! described by [`SimRequest`]s. [`AppPlan`] owns everything a request
//! needs (kernel handle, configured GPU, hinted partition, agent
//! template), so requests can execute in any order — or concurrently on
//! worker threads ([`crate::par`]) — and still assemble into exactly the
//! [`AppEvaluation`] the serial path produces.

use cta_clustering::{
    AgentKernel, BypassKernel, ClusterError, Framework, Partition, RedirectionKernel,
};
use gpu_kernels::{PartitionHint, Workload};
use gpu_sim::{
    ArrayTag, CtaContext, GpuConfig, KernelSpec, LaunchConfig, Op, Program, RunStats, Simulation,
};
use locality::Digest;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cross-variant program cache: one [`Arc<[Op]>`] per `(cta, warp)` of
/// the original grid, filled on first request and replayed zero-copy by
/// every variant of both evaluation phases. Suite programs depend only
/// on the CTA id and warp index (pinned by
/// `suite_programs_are_context_independent`), so a single canonical
/// context serves all SMs, slots, and arrival orders.
#[derive(Debug)]
struct ProgramCache {
    warps_per_cta: u32,
    slots: Box<[OnceLock<Arc<[Op]>>]>,
    hits: AtomicU64,
    fills: AtomicU64,
}

impl ProgramCache {
    fn new(launch: &LaunchConfig, warp_size: u32) -> ProgramCache {
        let wpc = launch.warps_per_cta(warp_size.max(1));
        let n = (launch.num_ctas() as usize).saturating_mul(wpc as usize);
        ProgramCache {
            warps_per_cta: wpc,
            slots: (0..n).map(|_| OnceLock::new()).collect(),
            hits: AtomicU64::new(0),
            fills: AtomicU64::new(0),
        }
    }

    /// The cached program of `(ctx.cta, warp)`, generating it under the
    /// canonical context on first touch. Out-of-range requests (a warp
    /// size smaller than the sizing default, probing past the grid)
    /// return `None` and fall back to direct generation.
    fn get_or_fill(&self, w: &dyn Workload, ctx: &CtaContext, warp: u32) -> Option<Arc<[Op]>> {
        if warp >= self.warps_per_cta {
            return None;
        }
        let idx = (ctx.cta as usize).checked_mul(self.warps_per_cta as usize)? + warp as usize;
        let slot = self.slots.get(idx)?;
        let mut filled = false;
        let arc = slot.get_or_init(|| {
            filled = true;
            let canonical = CtaContext {
                sm_id: 0,
                slot: 0,
                arrival: 0,
                ..*ctx
            };
            w.warp_program(&canonical, warp).into()
        });
        // `get_or_init` runs the closure on exactly one thread per slot,
        // so fills == distinct programs and hits == calls - fills: both
        // are functions of the request set alone, independent of thread
        // count or scheduling — safe for the deterministic JSONL export.
        if filled {
            self.fills.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        Some(Arc::clone(arc))
    }
}

/// Warp width the cache is sized with when no GPU is in scope (every
/// Table 1 preset uses 32). A run with a narrower warp only loses cache
/// coverage (`get_or_fill` bails out), never correctness.
const DEFAULT_WARP_SIZE: u32 = 32;

/// Cross-workload program-cache registry, keyed by canonical content
/// digest (plus warp width, which sizes the arena). Two workloads whose
/// kernel descriptions hash to the same digest — identical tenant
/// requests, parameter-sweep twins — share one [`ProgramCache`], so the
/// second workload replays the first one's traced programs instead of
/// regenerating them. The per-workload cache of [`SharedKernel::new`]
/// keys only `(cta, warp)` *within* one workload; this registry is the
/// cross-workload layer the plan server's content hashing unlocks.
///
/// Entries live for the process (the serve content cache bounds the
/// number of distinct digests that ever reach the registry).
struct ProgramRegistry {
    entries: Mutex<HashMap<(u128, u32), Arc<ProgramCache>>>,
    shares: AtomicU64,
    inserts: AtomicU64,
}

static PROGRAM_REGISTRY: OnceLock<ProgramRegistry> = OnceLock::new();

impl ProgramRegistry {
    fn global() -> &'static ProgramRegistry {
        PROGRAM_REGISTRY.get_or_init(|| ProgramRegistry {
            entries: Mutex::new(HashMap::new()),
            shares: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        })
    }

    /// The cache registered under `(key, warp_size)`, creating one sized
    /// for `launch` on first sight. The caller's digest must cover the
    /// launch geometry and program semantics — equal digests promise
    /// interchangeable warp programs.
    fn get_or_insert(
        &self,
        key: Digest,
        launch: &LaunchConfig,
        warp_size: u32,
    ) -> Arc<ProgramCache> {
        let mut entries = self.entries.lock().expect("program registry lock");
        match entries.entry((key.0, warp_size)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.shares.fetch_add(1, Ordering::Relaxed);
                Arc::clone(e.get())
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.inserts.fetch_add(1, Ordering::Relaxed);
                Arc::clone(v.insert(Arc::new(ProgramCache::new(launch, warp_size))))
            }
        }
    }
}

/// `(kernels served from an existing registry entry, entries created)`
/// of the process-wide content-addressed program registry.
pub fn program_registry_stats() -> (u64, u64) {
    let r = ProgramRegistry::global();
    (
        r.shares.load(Ordering::Relaxed),
        r.inserts.load(Ordering::Relaxed),
    )
}

/// A cloneable handle to a boxed workload, so the clustering transforms
/// (which need `Clone`) can wrap suite entries. Backed by `Arc` so the
/// handle can cross thread boundaries in the parallel harness.
///
/// The handle also owns the per-app [`ProgramCache`]: every clone — and
/// therefore every transform wrapping one — serves warp programs from
/// the same shared arena through [`KernelSpec::warp_program_arc`].
#[derive(Clone)]
pub struct SharedKernel {
    inner: Arc<dyn Workload>,
    cache: Arc<ProgramCache>,
}

impl SharedKernel {
    /// Wraps a suite workload, sizing the program cache for the default
    /// warp width.
    pub fn new(w: Box<dyn Workload>) -> Self {
        SharedKernel::with_warp_size(w, DEFAULT_WARP_SIZE)
    }

    /// Wraps a suite workload, sizing the program cache for `warp_size`.
    pub fn with_warp_size(w: Box<dyn Workload>, warp_size: u32) -> Self {
        let inner: Arc<dyn Workload> = Arc::from(w);
        let cache = Arc::new(ProgramCache::new(&inner.launch(), warp_size));
        SharedKernel { inner, cache }
    }

    /// Wraps a workload whose canonical content digest is `key`, serving
    /// warp programs from the process-wide content-addressed registry:
    /// workloads sharing a digest share one traced-program arena. The
    /// digest must cover launch geometry and program semantics (the plan
    /// server's kernel digest does).
    pub fn content_addressed(w: Box<dyn Workload>, key: Digest) -> Self {
        let inner: Arc<dyn Workload> = Arc::from(w);
        let cache =
            ProgramRegistry::global().get_or_insert(key, &inner.launch(), DEFAULT_WARP_SIZE);
        SharedKernel { inner, cache }
    }

    /// The workload's Table 2 metadata.
    pub fn info(&self) -> gpu_kernels::WorkloadInfo {
        self.inner.info()
    }

    /// `(hits, fills)` of the program cache so far.
    pub fn cache_counters(&self) -> (u64, u64) {
        (
            self.cache.hits.load(Ordering::Relaxed),
            self.cache.fills.load(Ordering::Relaxed),
        )
    }

    /// Records the cache counters under `scope`. Only meaningful once
    /// the totals are final for the scope (i.e. after every run of an
    /// app), so that the export is thread-count independent.
    fn record_cache_obs(&self, obs: &cta_obs::Obs, scope: &str) {
        let (hits, fills) = self.cache_counters();
        obs.counter("harness/program_cache_hits", scope, hits);
        obs.counter("harness/program_cache_fills", scope, fills);
    }
}

impl std::fmt::Debug for SharedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedKernel({})", self.inner.name())
    }
}

impl KernelSpec for SharedKernel {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn launch(&self) -> LaunchConfig {
        self.inner.launch()
    }
    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        self.inner.warp_program(ctx, warp)
    }
    fn warp_program_into(&self, ctx: &CtaContext, warp: u32, out: &mut Program) {
        self.inner.warp_program_into(ctx, warp, out)
    }
    fn warp_program_arc(&self, ctx: &CtaContext, warp: u32) -> Option<Arc<[Op]>> {
        self.cache.get_or_fill(&*self.inner, ctx, warp)
    }
}

/// The evaluated configurations, matching the series of Figures 12/13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// `BSL` — unmodified kernel under the default scheduler.
    Baseline,
    /// `RD` — redirection-based clustering.
    Redirection,
    /// `CLU` — agent-based clustering, all agents active.
    Clustering,
    /// `CLU+TOT` — agent-based clustering at the optimal throttling
    /// degree (selected by sweep, as the paper's dynamic voting does).
    ClusteringThrottled,
    /// `CLU+TOT+BPS` — adds L1 bypassing of streaming arrays.
    ClusteringThrottledBypass,
    /// `PFH+TOT` — clustering used only to reshape the CTA order,
    /// plus cross-CTA prefetching (the path for apps without
    /// exploitable inter-CTA locality).
    PrefetchThrottled,
}

impl Variant {
    /// The paper's series label.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Baseline => "BSL",
            Variant::Redirection => "RD",
            Variant::Clustering => "CLU",
            Variant::ClusteringThrottled => "CLU+TOT",
            Variant::ClusteringThrottledBypass => "CLU+TOT+BPS",
            Variant::PrefetchThrottled => "PFH+TOT",
        }
    }

    /// All variants in figure order.
    pub const ALL: [Variant; 6] = [
        Variant::Baseline,
        Variant::Redirection,
        Variant::Clustering,
        Variant::ClusteringThrottled,
        Variant::ClusteringThrottledBypass,
        Variant::PrefetchThrottled,
    ];
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The partition the workload's Table 2 hint selects.
pub fn hinted_partition(kernel: &SharedKernel, cfg: &GpuConfig) -> Partition {
    let grid = kernel.launch().grid;
    let m = cfg.num_sms as u64;
    match kernel.info().partition {
        PartitionHint::X => Partition::x(grid, m),
        PartitionHint::Y => Partition::y(grid, m),
    }
    .expect("suite grids are partitionable")
}

/// One independent simulation of the evaluation matrix.
///
/// Requests carry no references into their plan, so a `(plan, request)`
/// pair is a self-contained unit of work for a thread pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimRequest {
    /// The unmodified kernel.
    Baseline,
    /// Redirection-based clustering.
    Redirection,
    /// Agent-based clustering, all agents active.
    Clustering,
    /// Agent-based clustering throttled to `n` active agents.
    Throttled(u32),
    /// Throttled clustering plus L1 bypassing, at `n` active agents.
    Bypass(u32),
    /// Throttled clustering plus cross-CTA prefetching, at `n` agents.
    Prefetch(u32),
}

impl SimRequest {
    /// Short telemetry label: `BSL`, `RD`, `CLU`, `TOT{n}`, `BPS{n}`,
    /// `PFH{n}`. Throttle degrees are part of the label so every job of
    /// a sweep gets its own span and metric scope.
    pub fn label(&self) -> String {
        match self {
            SimRequest::Baseline => "BSL".into(),
            SimRequest::Redirection => "RD".into(),
            SimRequest::Clustering => "CLU".into(),
            SimRequest::Throttled(n) => format!("TOT{n}"),
            SimRequest::Bypass(n) => format!("BPS{n}"),
            SimRequest::Prefetch(n) => format!("PFH{n}"),
        }
    }
}

/// One workload's prepared evaluation: the configured GPU, the hinted
/// partition (computed once), the agent-kernel template, and the
/// throttling candidate set. Every [`SimRequest`] runs off this shared,
/// immutable state.
#[derive(Debug, Clone)]
pub struct AppPlan {
    /// Table 2 metadata of the workload.
    pub info: gpu_kernels::WorkloadInfo,
    /// The GPU configuration (already `prefer_l1`-adjusted).
    pub cfg: GpuConfig,
    kernel: SharedKernel,
    partition: Partition,
    agents: AgentKernel<SharedKernel>,
    /// Upper bound on concurrently resident agents per SM.
    pub max_agents: u32,
    /// Deduplicated, sorted throttling degrees the sweep will try.
    pub candidates: Vec<u32>,
}

impl AppPlan {
    /// Prepares `workload` for evaluation on `base_cfg`.
    ///
    /// The GPU is configured `cudaFuncCachePreferL1`-style on the
    /// configurable architectures (uniformly, including the baseline).
    /// The Table 2 partition hint is resolved exactly once here; every
    /// transform reuses it.
    pub fn new(base_cfg: &GpuConfig, workload: Box<dyn Workload>) -> AppPlan {
        let kernel = SharedKernel::new(workload);
        let cfg = base_cfg.prefer_l1(kernel.launch().smem_per_cta);
        AppPlan::build(cfg, kernel, None)
    }

    /// Prepares `workload` for evaluation on *exactly* `cfg` — no
    /// `prefer_l1` adjustment. This is the DSE entry point: a sweep that
    /// varies L1 geometry must see the geometry it asked for, not the
    /// preset's preference heuristic.
    pub fn with_config(cfg: GpuConfig, workload: Box<dyn Workload>) -> AppPlan {
        AppPlan::build(cfg, SharedKernel::new(workload), None)
    }

    /// [`AppPlan::new`] with the workload's canonical content digest:
    /// the plan's program cache comes from the cross-workload registry,
    /// so measured-mode serve requests whose kernel descriptions hash
    /// equal replay each other's traced programs.
    pub fn with_content_key(
        base_cfg: &GpuConfig,
        workload: Box<dyn Workload>,
        key: Digest,
    ) -> AppPlan {
        let kernel = SharedKernel::content_addressed(workload, key);
        let cfg = base_cfg.prefer_l1(kernel.launch().smem_per_cta);
        AppPlan::build(cfg, kernel, None)
    }

    /// [`AppPlan::with_config`] with `MAX_AGENTS` capped below the
    /// occupancy bound — the DSE sweep's `max_agents` axis. `None`
    /// keeps the occupancy bound.
    pub fn with_config_capped(
        cfg: GpuConfig,
        workload: Box<dyn Workload>,
        max_agents_cap: Option<u32>,
    ) -> AppPlan {
        AppPlan::build(cfg, SharedKernel::new(workload), max_agents_cap)
    }

    fn build(cfg: GpuConfig, kernel: SharedKernel, max_agents_cap: Option<u32>) -> AppPlan {
        let info = kernel.info();
        let partition = hinted_partition(&kernel, &cfg);
        let mut agents = AgentKernel::with_partition(kernel.clone(), &cfg, partition.clone())
            .expect("agent transform");
        if let Some(cap) = max_agents_cap {
            agents = agents.with_max_agents(cap).expect("nonzero MAX_AGENTS cap");
        }
        let max_agents = agents.max_agents();
        // Sweep candidates: a small set always containing Table 2's
        // published optimum, mirroring how the paper selected "Opt
        // Agents" empirically.
        let mut candidates = vec![1u32, 2, 4, info.opt_agents_for(cfg.arch), max_agents];
        candidates.retain(|&c| c >= 1 && c <= max_agents);
        candidates.sort_unstable();
        candidates.dedup();
        AppPlan {
            info,
            cfg,
            kernel,
            partition,
            agents,
            max_agents,
            candidates,
        }
    }

    /// The requests whose inputs are known up front: everything except
    /// the two variants that depend on the sweep's winner.
    pub fn phase_a(&self) -> Vec<SimRequest> {
        let mut reqs = vec![
            SimRequest::Baseline,
            SimRequest::Redirection,
            SimRequest::Clustering,
        ];
        reqs.extend(self.candidates.iter().map(|&c| SimRequest::Throttled(c)));
        reqs
    }

    /// The requests that need the sweep-selected throttling degree.
    pub fn phase_b(&self, chosen_agents: u32) -> Vec<SimRequest> {
        vec![
            SimRequest::Bypass(chosen_agents),
            SimRequest::Prefetch(chosen_agents),
        ]
    }

    /// Runs one request to completion. Pure with respect to the plan:
    /// the same request always yields the same [`RunStats`].
    ///
    /// The whole job runs inside a telemetry span named by its scope
    /// (`{gpu}/{app}/{label}`, e.g. `GTX570/MM/CLU`), on whichever
    /// thread executes it.
    ///
    /// # Errors
    ///
    /// Propagates transform-construction failures (invalid throttle
    /// degree, bypass transform) and simulator failures as
    /// [`ClusterError`] instead of panicking, so a bad request surfaces
    /// as a report-able error at the harness boundary.
    pub fn run(&self, req: SimRequest) -> Result<RunStats, ClusterError> {
        let t0 = std::time::Instant::now();
        let scope = format!("{}/{}/{}", self.cfg.name, self.info.abbr, req.label());
        let _job = cta_obs::span(scope.clone());
        let stats = self.with_kernel(req, |kernel| self.simulate(kernel, req, &scope))?;
        crate::par::record_busy(t0.elapsed());
        Ok(stats)
    }

    /// Like [`AppPlan::run`] but also returns the engine's event
    /// accounting, for the `sim_core` bench bin and conservation gates.
    /// Runs without telemetry sinks (the metrics themselves are the
    /// instrument here).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AppPlan::run`].
    pub fn run_metered(
        &self,
        req: SimRequest,
    ) -> Result<(RunStats, gpu_sim::EngineMetrics), ClusterError> {
        let t0 = std::time::Instant::now();
        let out = self.with_kernel(req, |kernel| {
            Simulation::new(self.cfg.clone(), kernel).run_metered()
        })?;
        crate::par::record_busy(t0.elapsed());
        Ok(out)
    }

    /// Like [`AppPlan::run_metered`] but with the opt-in per-set L1
    /// profile enabled: returns the merged [`gpu_sim::SetProfile`] of
    /// every sector array in the device. The `analyze --verify-costmodel`
    /// per-set machine check re-runs matrix points through this.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AppPlan::run`].
    pub fn run_profiled(
        &self,
        req: SimRequest,
    ) -> Result<(RunStats, gpu_sim::EngineMetrics, gpu_sim::SetProfile), ClusterError> {
        let t0 = std::time::Instant::now();
        let out = self.with_kernel(req, |kernel| {
            Simulation::new(self.cfg.clone(), kernel).run_profiled()
        })?;
        crate::par::record_busy(t0.elapsed());
        Ok(out)
    }

    /// Like [`AppPlan::run_metered`] but under an explicit CTA-scheduler
    /// model — the DSE harness sweeps scheduler policy as an axis.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AppPlan::run`].
    pub fn run_metered_sched(
        &self,
        req: SimRequest,
        scheduler: Box<dyn gpu_sim::sched::CtaScheduler>,
    ) -> Result<(RunStats, gpu_sim::EngineMetrics), ClusterError> {
        let t0 = std::time::Instant::now();
        let out = self.with_kernel(req, |kernel| {
            Simulation::new(self.cfg.clone(), kernel)
                .with_scheduler(scheduler)
                .run_metered()
        })?;
        crate::par::record_busy(t0.elapsed());
        Ok(out)
    }

    /// Hands the transformed kernel a request calls for to `f` without
    /// simulating — the static analyzer's cost model walks variant
    /// kernels through this.
    ///
    /// # Errors
    ///
    /// Propagates transform-construction failures.
    pub fn with_variant_kernel<R>(
        &self,
        req: SimRequest,
        f: impl FnOnce(&dyn KernelSpec) -> R,
    ) -> Result<R, ClusterError> {
        self.with_kernel(req, |kernel| Ok(f(kernel)))
    }

    /// `(hits, fills)` of this plan's program cache so far.
    pub fn cache_counters(&self) -> (u64, u64) {
        self.kernel.cache_counters()
    }

    /// Builds the transformed kernel a request calls for and hands it to
    /// `f` — the one place the request → kernel mapping lives.
    fn with_kernel<R>(
        &self,
        req: SimRequest,
        f: impl FnOnce(&dyn KernelSpec) -> Result<R, gpu_sim::SimError>,
    ) -> Result<R, ClusterError> {
        Ok(match req {
            SimRequest::Baseline => f(&self.kernel)?,
            SimRequest::Redirection => {
                let rd = RedirectionKernel::new(self.kernel.clone(), self.partition.clone());
                f(&rd)?
            }
            SimRequest::Clustering => f(&self.agents)?,
            SimRequest::Throttled(active) => {
                let throttled = self.agents.clone().with_active_agents(active)?;
                f(&throttled)?
            }
            SimRequest::Bypass(active) => {
                // Bypassing: streaming tags from the framework's probe.
                // The narrow probe suffices — the partition (axis) is the
                // plan's own, so the full analyze() axis sweep would be
                // three discarded simulations per request. The static
                // walk returns the identical tag set at program-
                // generation cost instead of a full traced simulation.
                let fw = Framework::new(self.cfg.clone());
                let tags: Vec<ArrayTag> = fw.streaming_tags_static(&self.kernel);
                let bypassed = AgentKernel::with_partition(
                    BypassKernel::new(self.kernel.clone(), tags),
                    &self.cfg,
                    self.partition.clone(),
                )?
                .with_active_agents(active)?;
                f(&bypassed)?
            }
            SimRequest::Prefetch(active) => {
                let prefetching = self
                    .agents
                    .clone()
                    .with_active_agents(active)?
                    .with_prefetch(2);
                f(&prefetching)?
            }
        })
    }

    /// Runs one simulation, telemetry-aware. With `CLUSTER_OBS` off this
    /// is exactly `Simulation::run` — the differential test pins that
    /// figures are byte-identical either way. With it on, the run is
    /// traced through a [`locality::ObsSink`] (trace sinks observe the
    /// access stream, they cannot steer the simulation) and the
    /// resulting [`RunStats`] counters are recorded under `scope`.
    fn simulate(
        &self,
        kernel: &dyn KernelSpec,
        req: SimRequest,
        scope: &str,
    ) -> Result<RunStats, gpu_sim::SimError> {
        let mut sim = Simulation::new(self.cfg.clone(), kernel);
        let Some(obs) = cta_obs::maybe_global() else {
            return sim.run();
        };
        // Cluster attribution: the baseline knows which cluster a CTA's
        // data *would* belong to from the hinted partition; clustered
        // variants bind one cluster per SM (agents adopt the cluster of
        // the SM they land on), so there the SM id is the cluster id.
        let (stats, metrics) = if matches!(req, SimRequest::Baseline) {
            let partition = self.partition.clone();
            let mut sink =
                locality::ObsSink::new(scope, move |cta, _sm| partition.assign(cta).0 as u32);
            let out = sim.run_traced_metered(&mut sink)?;
            sink.finish(obs);
            out
        } else {
            let mut sink = locality::ObsSink::new(scope, |_cta, sm| sm as u32);
            let out = sim.run_traced_metered(&mut sink)?;
            sink.finish(obs);
            out
        };
        stats.record_obs(obs, scope);
        metrics.record_obs(obs, scope);
        debug_assert_eq!(metrics.check_conservation(&stats), Ok(()), "{scope}");
        Ok(stats)
    }

    /// Picks the winning throttling degree from phase-A results
    /// (`stats` must be in [`AppPlan::phase_a`] order). Returns the
    /// degree and its index into `stats`. Strict `<` keeps the earliest
    /// candidate on ties, matching the original serial sweep.
    pub fn select_throttle(&self, stats: &[RunStats]) -> (u32, usize) {
        let sweep_base = 3; // Baseline, Redirection, Clustering precede the sweep.
        let mut best: Option<(u32, usize)> = None;
        for (i, &active) in self.candidates.iter().enumerate() {
            let idx = sweep_base + i;
            if best
                .as_ref()
                .is_none_or(|&(_, b)| stats[idx].cycles < stats[b].cycles)
            {
                best = Some((active, idx));
            }
        }
        best.expect("nonempty sweep")
    }

    /// Combines phase-A and phase-B results into the final evaluation.
    pub fn assemble(
        &self,
        phase_a: Vec<RunStats>,
        chosen: (u32, usize),
        phase_b: Vec<RunStats>,
    ) -> AppEvaluation {
        // Both phases are complete here (serial and parallel paths
        // alike), so the program-cache totals are final for this app —
        // the one point where exporting them is thread-count
        // deterministic.
        if let Some(obs) = cta_obs::maybe_global() {
            let scope = format!("{}/{}", self.cfg.name, self.info.abbr);
            self.kernel.record_cache_obs(obs, &scope);
        }
        let (chosen_agents, best_idx) = chosen;
        let tot_stats = phase_a[best_idx].clone();
        let mut a = phase_a.into_iter();
        let mut b = phase_b.into_iter();
        let runs = vec![
            (Variant::Baseline, a.next().expect("baseline stats")),
            (Variant::Redirection, a.next().expect("RD stats")),
            (Variant::Clustering, a.next().expect("CLU stats")),
            (Variant::ClusteringThrottled, tot_stats),
            (
                Variant::ClusteringThrottledBypass,
                b.next().expect("BPS stats"),
            ),
            (Variant::PrefetchThrottled, b.next().expect("PFH stats")),
        ];
        AppEvaluation {
            info: self.info,
            runs,
            chosen_agents,
        }
    }
}

/// Results of one workload under every variant on one GPU.
#[derive(Debug, Clone)]
pub struct AppEvaluation {
    /// Table 2 metadata of the workload.
    pub info: gpu_kernels::WorkloadInfo,
    /// Per-variant stats, in [`Variant::ALL`] order.
    pub runs: Vec<(Variant, RunStats)>,
    /// The throttling degree the sweep selected.
    pub chosen_agents: u32,
}

impl AppEvaluation {
    /// Stats of one variant.
    pub fn stats(&self, v: Variant) -> &RunStats {
        &self
            .runs
            .iter()
            .find(|(rv, _)| *rv == v)
            .expect("variant present")
            .1
    }

    /// Speedup of `v` over baseline.
    pub fn speedup(&self, v: Variant) -> f64 {
        self.stats(v).speedup_vs(self.stats(Variant::Baseline))
    }

    /// Normalized L2 transactions of `v` (baseline = 1.0).
    pub fn l2_norm(&self, v: Variant) -> f64 {
        self.stats(v).l2_txns_vs(self.stats(Variant::Baseline))
    }
}

/// Evaluates one workload under all six variants on `base_cfg`,
/// serially on the calling thread.
///
/// This is the legacy single-threaded path; [`crate::par`] runs the same
/// [`SimRequest`]s across worker threads and produces identical results.
///
/// # Errors
///
/// Propagates the first [`AppPlan::run`] failure.
pub fn evaluate_app(
    base_cfg: &GpuConfig,
    workload: Box<dyn Workload>,
) -> Result<AppEvaluation, ClusterError> {
    let plan = AppPlan::new(base_cfg, workload);
    let phase_a: Vec<RunStats> = plan
        .phase_a()
        .into_iter()
        .map(|r| plan.run(r))
        .collect::<Result<_, _>>()?;
    let chosen = plan.select_throttle(&phase_a);
    let phase_b: Vec<RunStats> = plan
        .phase_b(chosen.0)
        .into_iter()
        .map(|r| plan.run(r))
        .collect::<Result<_, _>>()?;
    Ok(plan.assemble(phase_a, chosen, phase_b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch;

    #[test]
    fn evaluate_small_app_produces_all_variants() {
        let w = gpu_kernels::suite::by_abbr("NW", gpu_sim::ArchGen::Fermi).unwrap();
        let eval = evaluate_app(&arch::gtx570(), w).expect("NW evaluation");
        assert_eq!(eval.runs.len(), 6);
        assert!(eval.speedup(Variant::Baseline) == 1.0);
        assert!(eval.chosen_agents >= 1);
        for v in Variant::ALL {
            assert!(eval.stats(v).cycles > 0, "{v}");
        }
    }

    #[test]
    fn variant_labels_match_paper() {
        let labels: Vec<_> = Variant::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(
            labels,
            vec!["BSL", "RD", "CLU", "CLU+TOT", "CLU+TOT+BPS", "PFH+TOT"]
        );
    }

    #[test]
    fn shared_kernel_handle_is_thread_safe() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedKernel>();
        assert_send_sync::<AppPlan>();
        assert_send_sync::<SimRequest>();
    }

    /// The program cache's safety precondition: a suite workload's warp
    /// programs may depend on the CTA id and warp index only, never on
    /// where or when the CTA was placed. The cache generates each
    /// program once under a canonical `(sm_id=0, slot=0, arrival=0)`
    /// context and replays it for every placement.
    #[test]
    fn suite_programs_are_context_independent() {
        for arch in [gpu_sim::ArchGen::Fermi, gpu_sim::ArchGen::Maxwell] {
            for w in gpu_kernels::suite::table2_suite(arch) {
                let launch = w.launch();
                let wpc = launch.warps_per_cta(32);
                let num_sms = 15;
                // A spread of CTAs including the last one.
                let ctas = [0, 1, launch.num_ctas() / 2, launch.num_ctas() - 1];
                for &cta in &ctas {
                    for warp in 0..wpc {
                        let canonical = CtaContext {
                            cta,
                            sm_id: 0,
                            slot: 0,
                            arrival: 0,
                            num_sms,
                        };
                        let perturbed = CtaContext {
                            cta,
                            sm_id: 7,
                            slot: 3,
                            arrival: 1234,
                            num_sms,
                        };
                        assert_eq!(
                            w.warp_program(&canonical, warp),
                            w.warp_program(&perturbed, warp),
                            "{} cta {cta} warp {warp}",
                            w.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn program_cache_replays_generated_programs() {
        let w = gpu_kernels::suite::by_abbr("NW", gpu_sim::ArchGen::Fermi).unwrap();
        let kernel = SharedKernel::new(w);
        let launch = kernel.launch();
        let wpc = launch.warps_per_cta(32);
        let ctx = |cta| CtaContext {
            cta,
            sm_id: 2,
            slot: 1,
            arrival: 99,
            num_sms: 15,
        };
        // First pass fills, second pass hits; both match direct generation.
        for pass in 0..2 {
            for cta in 0..launch.num_ctas() {
                for warp in 0..wpc {
                    let arc = kernel
                        .warp_program_arc(&ctx(cta), warp)
                        .expect("cache covers the grid");
                    assert_eq!(
                        arc.as_ref(),
                        kernel.warp_program(&ctx(cta), warp).as_slice(),
                        "pass {pass} cta {cta} warp {warp}"
                    );
                }
            }
        }
        let total = launch.num_ctas() * wpc as u64;
        assert_eq!(kernel.cache_counters(), (total, total));
        // Clones (as the transforms wrap them) share the same cache.
        let clone = kernel.clone();
        let _ = clone.warp_program_arc(&ctx(0), 0);
        assert_eq!(kernel.cache_counters(), (total + 1, total));
        // Out-of-range warp indices decline rather than alias a slot.
        assert!(kernel.warp_program_arc(&ctx(0), wpc).is_none());
    }

    #[test]
    fn content_addressed_kernels_share_one_program_arena() {
        let key = locality::CanonHasher::new("test-registry").digest();
        let mk = || {
            SharedKernel::content_addressed(
                gpu_kernels::suite::by_abbr("NW", gpu_sim::ArchGen::Fermi).unwrap(),
                key,
            )
        };
        let a = mk();
        let ctx = CtaContext {
            cta: 0,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        };
        let (h0, f0) = a.cache_counters();
        let _ = a.warp_program_arc(&ctx, 0).expect("covered");
        // A *different* SharedKernel built from the same digest sees the
        // fill the first one made: one arena, two workload instances.
        let b = mk();
        let _ = b.warp_program_arc(&ctx, 0).expect("covered");
        let (h1, f1) = b.cache_counters();
        assert_eq!(f1 - f0, 1, "exactly one generation for the shared slot");
        assert_eq!(h1 - h0, 1, "the twin replays it");
        // A different digest gets a fresh arena.
        let other = SharedKernel::content_addressed(
            gpu_kernels::suite::by_abbr("NW", gpu_sim::ArchGen::Fermi).unwrap(),
            locality::CanonHasher::new("test-registry-other").digest(),
        );
        let _ = other.warp_program_arc(&ctx, 0).expect("covered");
        let (h2, f2) = other.cache_counters();
        assert_eq!((h2, f2), (0, 1), "fresh arena for a fresh digest");
        let (shares, inserts) = program_registry_stats();
        assert!(shares >= 1);
        assert!(inserts >= 2);
    }

    #[test]
    fn plan_decomposition_matches_monolithic_order() {
        let w = gpu_kernels::suite::by_abbr("NW", gpu_sim::ArchGen::Fermi).unwrap();
        let plan = AppPlan::new(&arch::gtx570(), w);
        let phase_a = plan.phase_a();
        assert_eq!(
            &phase_a[..3],
            &[
                SimRequest::Baseline,
                SimRequest::Redirection,
                SimRequest::Clustering
            ]
        );
        assert_eq!(phase_a.len(), 3 + plan.candidates.len());
        // Candidates stay sorted and in range, including Table 2's optimum.
        assert!(plan.candidates.windows(2).all(|w| w[0] < w[1]));
        assert!(plan
            .candidates
            .iter()
            .all(|&c| c >= 1 && c <= plan.max_agents));
        let opt = plan.info.opt_agents_for(plan.cfg.arch).min(plan.max_agents);
        assert!(plan.candidates.contains(&opt));
        assert_eq!(
            plan.phase_b(2),
            vec![SimRequest::Bypass(2), SimRequest::Prefetch(2)]
        );
    }
}
