//! Abstract interpretation of the partition/binding arithmetic.
//!
//! The transform passes ([`crate::transform`]) check partition
//! invariants *concretely*, on the grids the suite launches. This pass
//! proves the same algebra **symbolically over the whole u64 domain**:
//! for every grid size `|V| ≤ u64::MAX` and cluster count `M`, the
//! chunked partitioning of Eqs. 4–5 and its Eq. 7 inversion compose to
//! the identity in both directions (`CL120` when unprovable), and every
//! intermediate of the shipped code fits its machine type (`CL121`).
//!
//! # The domain
//!
//! Values are multivariate polynomials with integer coefficients over
//! **nonnegative integer atoms**. Each branch of
//! [`Partition::assign`](cta_clustering::Partition::assign) /
//! [`Partition::invert`](cta_clustering::Partition::invert) gets a
//! *branch context* that defines every constrained quantity from a set
//! of free atoms using Euclid quotient–remainder decomposition plus
//! fresh slack atoms for strict bounds — e.g. branch C (the tail
//! clusters) uses free atoms `{wC, dq, iC, r, dM}` with
//!
//! ```text
//! q := wC + 1 + dq          (the remainder wC is < the divisor q)
//! M := r + iC + 1 + dM      (the quotient iC is ≤ M - r - 1)
//! off := iC·q + wC          (quotient–remainder form of the offset)
//! o := r·(q+1) + off        (the branch guard o ≥ boundary)
//! V := M·q + r              (Euclid on |V| and M)
//! ```
//!
//! Every concrete execution of the branch corresponds to some
//! assignment of the free atoms, so a proof over the atoms covers the
//! full u64 domain. Three judgment forms close the obligations:
//!
//! * **Zero** — the polynomial normalizes to 0 (identities),
//! * **Nonneg** — every coefficient is ≥ 0, hence the value is ≥ 0 for
//!   all atom assignments (ranges, branch guards, cast losslessness),
//! * **Negative** — every coefficient ≤ 0 with a negative constant
//!   term, hence the value is < 0 everywhere (dead-branch proofs: the
//!   `small == 0` arm of `assign` contradicts `o < |V|`).
//!
//! The judgments are sufficient, not complete — but they discharge
//! every obligation of the hardened arithmetic, and they *fail* on the
//! two seeded regressions [`ArithModel`] can re-introduce: dropping the
//! Eq. 7 `min` correction (caught as a nonzero identity residual,
//! `CL120`) and evaluating the inversion intermediate in u64 (caught as
//! an unboundable intermediate, `CL121`, which is why the shipped code
//! widens to u128).

use crate::diag::{Lint, Report, BINDING_IDENTITY_UNPROVEN, BINDING_OVERFLOW};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A monomial: sorted `(atom, power)` pairs; empty = the constant term.
type Monomial = Vec<(&'static str, u32)>;

/// A multivariate polynomial with integer coefficients over
/// nonnegative integer atoms.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Poly(BTreeMap<Monomial, i64>);

/// The polynomial `k`.
fn c(k: i64) -> Poly {
    let mut p = Poly::default();
    if k != 0 {
        p.0.insert(Vec::new(), k);
    }
    p
}

/// The polynomial consisting of one atom.
fn v(name: &'static str) -> Poly {
    let mut p = Poly::default();
    p.0.insert(vec![(name, 1)], 1);
    p
}

impl Poly {
    fn insert(&mut self, mono: Monomial, coef: i64) {
        if coef == 0 {
            return;
        }
        let e = self.0.entry(mono.clone()).or_insert(0);
        *e += coef;
        if *e == 0 {
            self.0.remove(&mono);
        }
    }

    fn is_zero(&self) -> bool {
        self.0.is_empty()
    }

    /// All coefficients ≥ 0 ⇒ the value is ≥ 0 for every assignment of
    /// the (nonnegative) atoms.
    fn is_nonneg(&self) -> bool {
        self.0.values().all(|&c| c >= 0)
    }

    /// Constant term < 0 and every coefficient ≤ 0 ⇒ the value is < 0
    /// everywhere.
    fn is_negative(&self) -> bool {
        self.0.get(&Vec::new()).copied().unwrap_or(0) < 0 && self.0.values().all(|&c| c <= 0)
    }

    /// Substitutes `rep` for every occurrence of atom `name`.
    fn subst(&self, name: &str, rep: &Poly) -> Poly {
        let mut out = Poly::default();
        for (mono, &coef) in &self.0 {
            let power = mono
                .iter()
                .find(|(a, _)| *a == name)
                .map(|&(_, p)| p)
                .unwrap_or(0);
            let rest: Monomial = mono.iter().filter(|(a, _)| *a != name).copied().collect();
            let mut term = Poly::default();
            term.insert(rest, coef);
            for _ in 0..power {
                term = term * rep.clone();
            }
            for (m, c) in term.0 {
                out.insert(m, c);
            }
        }
        out
    }
}

impl Add for Poly {
    type Output = Poly;
    fn add(self, rhs: Poly) -> Poly {
        let mut out = self;
        for (m, c) in rhs.0 {
            out.insert(m, c);
        }
        out
    }
}

impl Sub for Poly {
    type Output = Poly;
    fn sub(self, rhs: Poly) -> Poly {
        let mut out = self;
        for (m, c) in rhs.0 {
            out.insert(m, -c);
        }
        out
    }
}

impl Mul for Poly {
    type Output = Poly;
    fn mul(self, rhs: Poly) -> Poly {
        let mut out = Poly::default();
        for (ma, &ca) in &self.0 {
            for (mb, &cb) in &rhs.0 {
                let mut mono: BTreeMap<&'static str, u32> = ma.iter().copied().collect();
                for &(a, p) in mb {
                    *mono.entry(a).or_insert(0) += p;
                }
                out.insert(mono.into_iter().collect(), ca * cb);
            }
        }
        out
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return f.write_str("0");
        }
        for (n, (mono, coef)) in self.0.iter().enumerate() {
            let mag = coef.abs();
            if n == 0 {
                if *coef < 0 {
                    f.write_str("-")?;
                }
            } else if *coef < 0 {
                f.write_str(" - ")?;
            } else {
                f.write_str(" + ")?;
            }
            let mut wrote = false;
            if mag != 1 || mono.is_empty() {
                write!(f, "{mag}")?;
                wrote = true;
            }
            for &(a, p) in mono {
                if wrote {
                    f.write_str("*")?;
                }
                f.write_str(a)?;
                if p > 1 {
                    write!(f, "^{p}")?;
                }
                wrote = true;
            }
        }
        Ok(())
    }
}

/// A branch context: definitions of constrained atoms over free atoms.
/// Definitions are resolved at insertion, so every stored definition —
/// and hence every [`Ctx::resolve`] result — mentions free atoms only.
#[derive(Debug, Default)]
struct Ctx {
    defs: Vec<(&'static str, Poly)>,
}

impl Ctx {
    fn define(&mut self, name: &'static str, p: Poly) {
        let resolved = self.resolve(p);
        self.defs.push((name, resolved));
    }

    fn resolve(&self, p: Poly) -> Poly {
        let mut out = p;
        for (name, def) in &self.defs {
            out = out.subst(name, def);
        }
        out
    }
}

/// Judgment form an obligation is closed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Goal {
    /// The polynomial must normalize to zero.
    Zero,
    /// Every coefficient must be ≥ 0.
    Nonneg,
    /// Every coefficient ≤ 0 with a negative constant term.
    Negative,
}

struct Obligation {
    name: String,
    lint: &'static Lint,
    goal: Goal,
    poly: Poly,
}

/// Resolves `p` in `cx` and appends it as an obligation.
fn ob(out: &mut Vec<Obligation>, cx: &Ctx, name: String, lint: &'static Lint, goal: Goal, p: Poly) {
    out.push(Obligation {
        name,
        lint,
        goal,
        poly: cx.resolve(p),
    });
}

/// Which arithmetic the pass verifies: the shipped code, or one of the
/// seeded regressions the negative-path tests (and fixtures) use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArithModel {
    /// The shipped arithmetic: Eq. 7 with the `min` correction,
    /// inversion intermediates widened to u128.
    #[default]
    Hardened,
    /// Eq. 7 without the `min(|V|%M − i, 0)` correction — the naive
    /// reading of the paper's formula. Breaks inversion for tail
    /// clusters (`CL120`).
    UncorrectedInversion,
    /// The inversion intermediate `i·(|V|/M + 1) + w` evaluated in u64 —
    /// the pre-hardening code. Overflows near the top of the domain
    /// (`CL121`), which is why the shipped code widens to u128.
    NarrowIntermediate,
}

/// One obligation the engine could not discharge.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Obligation name (branch and property).
    pub obligation: String,
    /// Stable code of the lint the failure reports under.
    pub code: &'static str,
    /// The residual polynomial that blocked the judgment.
    pub residual: String,
}

/// Result of one verification run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Names of discharged obligations, in order.
    pub proved: Vec<String>,
    /// Obligations that could not be discharged.
    pub failures: Vec<Failure>,
}

/// Branch A of `assign`: head clusters, `o < boundary`. Free atoms
/// `{wA, dq, iA, dr, dM}`; position `o = iA·(q+1) + wA` with `wA ≤ q`
/// and `iA < r`.
fn branch_a(model: ArithModel, out: &mut Vec<Obligation>) {
    let mut cx = Ctx::default();
    cx.define("r", v("iA") + c(1) + v("dr"));
    cx.define("M", v("r") + c(1) + v("dM"));
    cx.define("q", v("wA") + v("dq"));
    cx.define("V", v("M") * v("q") + v("r"));
    cx.define("boundary", v("r") * (v("q") + c(1)));
    cx.define("o", v("iA") * (v("q") + c(1)) + v("wA"));
    // i = iA < r: the saturating subtraction's zero arm (every model
    // agrees here — the correction term is 0).
    cx.define("o_inv", v("iA") * (v("q") + c(1)) + v("wA"));

    ob(
        out,
        &cx,
        "assign:A/inverse identity f⁻¹(f(o)) = o".into(),
        &BINDING_IDENTITY_UNPROVEN,
        Goal::Zero,
        v("o_inv") - v("o"),
    );
    ob(
        out,
        &cx,
        "assign:A/saturating-sub zero arm: i < |V|%M".into(),
        &BINDING_IDENTITY_UNPROVEN,
        Goal::Nonneg,
        v("r") - c(1) - v("iA"),
    );
    ob(
        out,
        &cx,
        "assign:A/forward identity: f⁻¹ image lands back in branch A".into(),
        &BINDING_IDENTITY_UNPROVEN,
        Goal::Nonneg,
        v("boundary") - c(1) - v("o"),
    );
    ob(
        out,
        &cx,
        "assign:A/position in range: o < |V|".into(),
        &BINDING_OVERFLOW,
        Goal::Nonneg,
        v("V") - c(1) - v("o"),
    );
    ob(
        out,
        &cx,
        "assign:A/cluster coordinate in range: w ≤ |V|/M".into(),
        &BINDING_OVERFLOW,
        Goal::Nonneg,
        v("q") - v("wA"),
    );
    if model == ArithModel::Hardened {
        ob(
            out,
            &cx,
            "assign:A/inversion result fits u64: f⁻¹(w,i) < |V|".into(),
            &BINDING_OVERFLOW,
            Goal::Nonneg,
            v("V") - c(1) - v("o_inv"),
        );
    }
}

/// Branch C of `assign`: tail clusters, `o ≥ boundary` with
/// `|V|/M ≥ 1`. Free atoms `{wC, dq, iC, r, dM}`; the offset past the
/// boundary is `off = iC·q + wC` with `wC < q` and `iC ≤ M - r - 1`.
fn branch_c(model: ArithModel, out: &mut Vec<Obligation>) {
    let mut cx = Ctx::default();
    cx.define("q", v("wC") + c(1) + v("dq"));
    cx.define("M", v("r") + v("iC") + c(1) + v("dM"));
    cx.define("V", v("M") * v("q") + v("r"));
    cx.define("boundary", v("r") * (v("q") + c(1)));
    cx.define("off", v("iC") * v("q") + v("wC"));
    cx.define("o", v("boundary") + v("off"));
    cx.define("i", v("r") + v("iC"));
    // Eq. 7 with i ≥ r: correction subtracts i − r — unless the model
    // drops it.
    let correction = match model {
        ArithModel::UncorrectedInversion => c(0),
        _ => v("i") - v("r"),
    };
    cx.define("o_inv", v("i") * (v("q") + c(1)) + v("wC") - correction);

    ob(
        out,
        &cx,
        "assign:C/inverse identity f⁻¹(f(o)) = o".into(),
        &BINDING_IDENTITY_UNPROVEN,
        Goal::Zero,
        v("o_inv") - v("o"),
    );
    ob(
        out,
        &cx,
        "assign:C/saturating-sub live arm: i ≥ |V|%M".into(),
        &BINDING_IDENTITY_UNPROVEN,
        Goal::Nonneg,
        v("i") - v("r"),
    );
    ob(
        out,
        &cx,
        "assign:C/forward identity: f⁻¹ image lands back in branch C".into(),
        &BINDING_IDENTITY_UNPROVEN,
        Goal::Nonneg,
        v("o") - v("boundary"),
    );
    ob(
        out,
        &cx,
        "assign:C/cluster index in range: i < M".into(),
        &BINDING_OVERFLOW,
        Goal::Nonneg,
        v("M") - c(1) - v("i"),
    );
    ob(
        out,
        &cx,
        "assign:C/position in range: o < |V|".into(),
        &BINDING_OVERFLOW,
        Goal::Nonneg,
        v("V") - c(1) - v("o"),
    );
    ob(
        out,
        &cx,
        "assign:C/boundary cast lossless: boundary ≤ |V|".into(),
        &BINDING_OVERFLOW,
        Goal::Nonneg,
        v("V") - v("boundary"),
    );
    if model == ArithModel::NarrowIntermediate {
        // u64::MAX modeled as V + dU (any value ≥ |V|): the u64
        // intermediate i·(q+1) + w must stay under it — it does not.
        cx.define("U", v("V") + v("dU"));
        ob(
            out,
            &cx,
            "assign:C/u64 inversion intermediate i*(q+1)+w fits u64".into(),
            &BINDING_OVERFLOW,
            Goal::Nonneg,
            v("U") - (v("i") * (v("q") + c(1)) + v("wC")),
        );
    } else {
        ob(
            out,
            &cx,
            "assign:C/inversion result fits u64: f⁻¹(w,i) < |V|".into(),
            &BINDING_OVERFLOW,
            Goal::Nonneg,
            v("V") - c(1) - v("o_inv"),
        );
    }
}

/// Branch B of `assign` (`o ≥ boundary` with `|V|/M = 0`): provably
/// unreachable. With `q = 0`, Euclid gives `V = r` and the boundary is
/// `r·1 = V`, so the guard `o ≥ boundary` contradicts `o < |V|`.
fn branch_b_dead(out: &mut Vec<Obligation>) {
    let mut cx = Ctx::default();
    cx.define("q", c(0));
    cx.define("M", v("r") + c(1) + v("dM"));
    cx.define("V", v("M") * v("q") + v("r"));
    cx.define("boundary", v("r") * (v("q") + c(1)));
    cx.define("o", v("boundary") + v("s"));
    out.push(Obligation {
        name: "assign:B/branch is dead: guard contradicts o < |V|".into(),
        lint: &BINDING_IDENTITY_UNPROVEN,
        goal: Goal::Negative,
        poly: cx.resolve(v("V") - c(1) - v("o")),
    });
}

/// RR-binding (Eq. 8): `u = w·M + i` is the quotient–remainder form of
/// `u` by `M`, so binding and unbinding compose to the identity and the
/// recomposition equals a value that already fit u64.
fn rr(out: &mut Vec<Obligation>) {
    let mut cx = Ctx::default();
    cx.define("m", v("i") + c(1) + v("dm"));
    cx.define("u", v("w") * v("m") + v("i"));
    ob(
        out,
        &cx,
        "rr/unbind(bind(u)) = u".into(),
        &BINDING_IDENTITY_UNPROVEN,
        Goal::Zero,
        (v("w") * v("m") + v("i")) - v("u"),
    );
    ob(
        out,
        &cx,
        "rr/remainder in range: i < m".into(),
        &BINDING_IDENTITY_UNPROVEN,
        Goal::Nonneg,
        v("m") - c(1) - v("i"),
    );
    ob(
        out,
        &cx,
        "rr/recomposition fits u64: w*m + i = u".into(),
        &BINDING_OVERFLOW,
        Goal::Zero,
        (v("w") * v("m") + v("i")) - v("u"),
    );
}

/// Verifies the binding arithmetic under `model`, returning every
/// discharged obligation and every failure.
pub fn verify(model: ArithModel) -> Outcome {
    let mut obligations = Vec::new();
    branch_a(model, &mut obligations);
    branch_b_dead(&mut obligations);
    branch_c(model, &mut obligations);
    rr(&mut obligations);

    let mut out = Outcome {
        proved: Vec::new(),
        failures: Vec::new(),
    };
    for ob in obligations {
        let ok = match ob.goal {
            Goal::Zero => ob.poly.is_zero(),
            Goal::Nonneg => ob.poly.is_nonneg(),
            Goal::Negative => ob.poly.is_negative(),
        };
        if ok {
            out.proved.push(ob.name);
        } else {
            out.failures.push(Failure {
                obligation: ob.name,
                code: ob.lint.code,
                residual: ob.poly.to_string(),
            });
        }
    }
    out
}

/// Runs the hardened-arithmetic proof and reports any undischarged
/// obligation (none expected) into `report`.
pub fn check(report: &mut Report) {
    // One subject per verified unit: the three assign branches and rr.
    for _ in 0..4 {
        report.note_subject();
    }
    let outcome = verify(ArithModel::Hardened);
    for f in outcome.failures {
        let lint = crate::diag::lint_by_code(f.code).expect("failure carries a declared lint");
        report.emit(
            lint,
            "binding-arithmetic",
            format!("{}: residual {}", f.obligation, f.residual),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_normalization() {
        let p = (v("a") + v("b")) * (v("a") - v("b"));
        assert_eq!(p, v("a") * v("a") - v("b") * v("b"));
        assert!((p.clone() - p).is_zero());
        assert_eq!((v("a") * c(2) + c(3) - v("b")).to_string(), "3 + 2*a - b");
    }

    #[test]
    fn substitution_expands_powers() {
        let p = v("x") * v("x") + v("x");
        let q = p.subst("x", &(v("y") + c(1)));
        // (y+1)^2 + (y+1) = y^2 + 3y + 2
        assert_eq!(q, v("y") * v("y") + c(3) * v("y") + c(2));
    }

    #[test]
    fn hardened_arithmetic_is_fully_proved() {
        let out = verify(ArithModel::Hardened);
        assert!(out.failures.is_empty(), "undischarged: {:?}", out.failures);
        assert!(out.proved.len() >= 15, "{:?}", out.proved);
        assert!(out.proved.iter().any(|n| n.contains("branch is dead")));
    }

    #[test]
    fn uncorrected_inversion_fails_the_identity() {
        let out = verify(ArithModel::UncorrectedInversion);
        // The identity breaks, and as a consequence the uncorrected
        // result also escapes the u64 position range.
        let f = out
            .failures
            .iter()
            .find(|f| f.code == "CL120")
            .expect("identity must be unprovable");
        assert!(f.obligation.contains("assign:C"), "{}", f.obligation);
        // The residual is exactly the dropped correction, i − r = iC.
        assert_eq!(f.residual, "iC");
        assert!(
            out.failures
                .iter()
                .all(|f| f.obligation.contains("assign:C")),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn narrow_intermediate_fails_the_u64_bound() {
        let out = verify(ArithModel::NarrowIntermediate);
        assert_eq!(out.failures.len(), 1, "{:?}", out.failures);
        let f = &out.failures[0];
        assert_eq!(f.code, "CL121");
        assert!(f.obligation.contains("intermediate"), "{}", f.obligation);
        // The counterexample direction: the residual goes negative as
        // iC grows — precisely the overflow the u128 widening removes.
        assert!(f.residual.contains("- iC"), "{}", f.residual);
    }

    #[test]
    fn check_is_clean_and_counts_subjects() {
        let mut r = Report::new();
        check(&mut r);
        assert_eq!(r.deny_count(), 0, "{}", r.render_human());
        assert_eq!(r.subjects_checked(), 4);
    }

    /// The symbolic branch contexts agree with the concrete partition on
    /// grids at the top of the u64 domain — the region the proptests in
    /// `tests/properties.rs` sample and no concrete sweep could cover.
    #[test]
    fn symbolic_proof_matches_concrete_extremes() {
        use cta_clustering::Partition;
        use gpu_sim::Dim3;
        let grid = Dim3::plane(u32::MAX, u32::MAX);
        let total = grid.count();
        for m in [1, 2, (total / 2) + 1, total - 1, total] {
            let p = Partition::y(grid, m).unwrap();
            for v in [0, 1, total / 2, total - 2, total - 1] {
                let (w, i) = p.assign(v);
                assert_eq!(p.invert(w, i), v, "M={m} v={v}");
            }
        }
    }
}
