//! Golden determinism for the `analyze` binary: the report must be
//! byte-identical no matter how many worker threads execute the sweep,
//! and the documented exit codes must hold.
//!
//! Keeps the sweep small (`--filter MM` restricts to the matrix-multiply
//! workloads) so the test stays fast while still crossing every pass
//! family: workload passes, the protocol model checker, and the
//! binding-arithmetic proof all contribute subjects.

use std::process::{Command, Output};

fn analyze(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_analyze"))
        .args(args)
        .output()
        .expect("spawn the analyze binary")
}

#[test]
fn json_report_is_byte_identical_across_worker_counts() {
    let golden = analyze(&[
        "--filter",
        "MM",
        "--arch",
        "gtx1080",
        "--json",
        "--threads",
        "1",
    ]);
    assert!(
        golden.status.success(),
        "single-threaded sweep failed:\n{}",
        String::from_utf8_lossy(&golden.stderr)
    );
    assert!(
        !golden.stdout.is_empty(),
        "the JSON report must not be empty"
    );
    let text = String::from_utf8(golden.stdout.clone()).expect("report is UTF-8");
    assert!(
        text.contains("\"lints\""),
        "report is missing the lint registry section"
    );

    for threads in ["2", "8"] {
        let out = analyze(&[
            "--filter",
            "MM",
            "--arch",
            "gtx1080",
            "--json",
            "--threads",
            threads,
        ]);
        assert!(out.status.success(), "sweep failed with {threads} threads");
        assert_eq!(
            out.stdout, golden.stdout,
            "report differs between 1 and {threads} worker threads"
        );
    }
}

#[test]
fn human_report_is_byte_identical_across_worker_counts() {
    let golden = analyze(&["--filter", "MM", "--arch", "gtx1080", "--threads", "1"]);
    assert!(golden.status.success());
    let out = analyze(&["--filter", "MM", "--arch", "gtx1080", "--threads", "8"]);
    assert!(out.status.success());
    assert_eq!(
        out.stdout, golden.stdout,
        "human-readable report differs between 1 and 8 worker threads"
    );
}

#[test]
fn concurrency_gate_is_clean_and_deterministic() {
    let golden = analyze(&["--verify-protocol", "--json", "--threads", "1"]);
    assert!(
        golden.status.success(),
        "the protocol gate must pass on every preset:\n{}",
        String::from_utf8_lossy(&golden.stdout)
    );
    let out = analyze(&["--verify-protocol", "--json", "--threads", "8"]);
    assert!(out.status.success());
    assert_eq!(out.stdout, golden.stdout);
}

#[test]
fn usage_errors_exit_with_code_two() {
    let bad_flag = analyze(&["--bogus"]);
    assert_eq!(bad_flag.status.code(), Some(2));

    let no_preset = analyze(&["--arch", "no-such-gpu"]);
    assert_eq!(no_preset.status.code(), Some(2));

    let zero_threads = analyze(&["--threads", "0"]);
    assert_eq!(zero_threads.status.code(), Some(2));
}
