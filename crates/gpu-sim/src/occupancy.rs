//! Occupancy arithmetic: how many CTAs of a kernel fit on one SM.
//!
//! This is the calculation behind the "CTAs" column of the paper's Table 2
//! and the `MAX_AGENTS` constant of the agent-based clustering transform
//! (Listing 5): the maximum allowable agents per SM is exactly the
//! occupancy bound of the transformed kernel.

use crate::config::GpuConfig;
use crate::error::SimError;
use crate::kernel::LaunchConfig;

/// Which resource bounds occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OccupancyLimiter {
    /// Hardware CTA slots.
    CtaSlots,
    /// Hardware warp slots.
    WarpSlots,
    /// Register file capacity.
    Registers,
    /// Shared-memory capacity.
    SharedMemory,
}

/// Detailed occupancy result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Maximum CTAs of this kernel resident on one SM.
    pub ctas_per_sm: u32,
    /// The binding resource.
    pub limiter: OccupancyLimiter,
    /// Resident warps implied (`ctas_per_sm * warps_per_cta`).
    pub warps_per_sm: u32,
    /// Theoretical occupancy: resident warps / warp slots.
    pub theoretical: f64,
}

/// Computes the occupancy of `launch` on `cfg`.
///
/// # Errors
///
/// Returns [`SimError::Unschedulable`] when even a single CTA exceeds a
/// per-SM resource, and [`SimError::InvalidLaunch`] for malformed
/// launches.
pub fn occupancy(cfg: &GpuConfig, launch: &LaunchConfig) -> Result<Occupancy, SimError> {
    launch.validate()?;
    let warps_per_cta = launch.warps_per_cta(cfg.warp_size);
    let threads = launch.threads_per_cta();
    let regs_per_cta = launch.regs_per_thread as u64 * threads as u64;

    if warps_per_cta > cfg.warp_slots {
        return Err(SimError::Unschedulable {
            resource: "warp slots",
            required: warps_per_cta as u64,
            available: cfg.warp_slots as u64,
        });
    }
    if regs_per_cta > cfg.regs_per_sm as u64 {
        return Err(SimError::Unschedulable {
            resource: "registers",
            required: regs_per_cta,
            available: cfg.regs_per_sm as u64,
        });
    }
    if launch.smem_per_cta as u64 > cfg.smem_per_sm as u64 {
        return Err(SimError::Unschedulable {
            resource: "shared memory bytes",
            required: launch.smem_per_cta as u64,
            available: cfg.smem_per_sm as u64,
        });
    }

    let mut best = (cfg.cta_slots, OccupancyLimiter::CtaSlots);
    let by_warps = cfg.warp_slots / warps_per_cta;
    if by_warps < best.0 {
        best = (by_warps, OccupancyLimiter::WarpSlots);
    }
    if let Some(by_regs) = (cfg.regs_per_sm as u64).checked_div(regs_per_cta) {
        if (by_regs as u32) < best.0 {
            best = (by_regs as u32, OccupancyLimiter::Registers);
        }
    }
    if let Some(by_smem) = cfg.smem_per_sm.checked_div(launch.smem_per_cta) {
        if by_smem < best.0 {
            best = (by_smem, OccupancyLimiter::SharedMemory);
        }
    }

    let (ctas_per_sm, limiter) = best;
    let warps_per_sm = ctas_per_sm * warps_per_cta;
    Ok(Occupancy {
        ctas_per_sm,
        limiter,
        warps_per_sm,
        theoretical: warps_per_sm as f64 / cfg.warp_slots as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;
    use crate::dim::Dim3;

    #[test]
    fn cta_slot_bound_microbenchmark() {
        // Listing 3: single-warp CTAs fill all CTA slots on every arch.
        let l = LaunchConfig::new(480u32, 32u32).with_regs(16);
        assert_eq!(occupancy(&arch::gtx570(), &l).unwrap().ctas_per_sm, 8);
        assert_eq!(occupancy(&arch::tesla_k40(), &l).unwrap().ctas_per_sm, 16);
        assert_eq!(occupancy(&arch::gtx980(), &l).unwrap().ctas_per_sm, 32);
        assert_eq!(occupancy(&arch::gtx1080(), &l).unwrap().ctas_per_sm, 32);
    }

    #[test]
    fn warp_slot_bound_mm() {
        // MM: 32 warps per CTA -> 1 CTA/SM on Fermi (48 slots), 2 elsewhere.
        let l = LaunchConfig::new(Dim3::plane(8, 8), Dim3::plane(32, 32))
            .with_regs(22)
            .with_smem(8192);
        let o = occupancy(&arch::gtx570(), &l).unwrap();
        assert_eq!(o.ctas_per_sm, 1);
        assert_eq!(o.limiter, OccupancyLimiter::WarpSlots);
        let o = occupancy(&arch::tesla_k40(), &l).unwrap();
        assert_eq!(o.ctas_per_sm, 2);
    }

    #[test]
    fn register_bound() {
        let cfg = arch::gtx570(); // 32K regs
        let l = LaunchConfig::new(16u32, 256u32).with_regs(63);
        let o = occupancy(&cfg, &l).unwrap();
        assert_eq!(o.limiter, OccupancyLimiter::Registers);
        assert_eq!(o.ctas_per_sm, 32_768 / (63 * 256));
    }

    #[test]
    fn smem_bound() {
        let cfg = arch::gtx570(); // 48KB smem
        let l = LaunchConfig::new(16u32, 64u32)
            .with_regs(8)
            .with_smem(20 * 1024);
        let o = occupancy(&cfg, &l).unwrap();
        assert_eq!(o.ctas_per_sm, 2);
        assert_eq!(o.limiter, OccupancyLimiter::SharedMemory);
    }

    #[test]
    fn unschedulable_cta() {
        let cfg = arch::gtx570();
        let too_many_regs = LaunchConfig::new(1u32, 1024u32).with_regs(64);
        assert!(matches!(
            occupancy(&cfg, &too_many_regs),
            Err(SimError::Unschedulable {
                resource: "registers",
                ..
            })
        ));
        let too_much_smem = LaunchConfig::new(1u32, 32u32).with_smem(1 << 20);
        assert!(occupancy(&cfg, &too_much_smem).is_err());
    }

    #[test]
    fn theoretical_occupancy_fraction() {
        let cfg = arch::tesla_k40();
        let l = LaunchConfig::new(64u32, 256u32).with_regs(16);
        let o = occupancy(&cfg, &l).unwrap();
        assert_eq!(o.warps_per_sm, o.ctas_per_sm * 8);
        assert!(o.theoretical <= 1.0 && o.theoretical > 0.0);
    }
}
