//! Telemetry trace sink: streams per-`(tag, cluster)` reuse-distance
//! histograms and per-level service counters onto a [`cta_obs::Obs`]
//! recorder.
//!
//! The sink accumulates everything locally while the simulation runs —
//! exact LRU stack distances via [`ReuseDistance`], latencies and
//! service levels in plain maps — and touches the recorder once, in
//! [`ObsSink::finish`]. The hot loop therefore costs the same whether
//! the recorder is the process-global one or a test-local one, and a
//! run traced through this sink produces byte-identical [`RunStats`] to
//! an untraced run ([`gpu_sim::TraceSink`]s observe, they cannot steer).
//!
//! [`RunStats`]: gpu_sim::RunStats

use crate::distance::ReuseDistance;
use cta_obs::Hist;
use gpu_sim::{AccessEvent, Level, TraceSink};
use std::collections::BTreeMap;

/// Trace sink that renders the access stream into `cta-obs` metrics.
///
/// Metric names and keys (all under the scope string given at
/// construction, conventionally `{gpu}/{app}/{variant}`):
///
/// * `locality/reuse_distance` keyed `{scope}/tag{T}/c{C}` — log2-bucketed
///   exact LRU stack distances of read lines, per array tag and cluster.
/// * `locality/cold_lines` keyed `{scope}/tag{T}/c{C}` — first-touch
///   accesses (no defined distance; excluded from the histogram).
/// * `sim/load_latency` keyed `{scope}` — warp-visible load latencies in
///   cycles (deterministic: simulated time, not wall-clock).
/// * `sim/served_l1` / `sim/served_l2` / `sim/served_dram` keyed
///   `{scope}` — loads by the deepest level that serviced them.
pub struct ObsSink<F> {
    scope: String,
    cluster_of: F,
    line_bytes: u64,
    dists: BTreeMap<(u16, u32), ReuseDistance>,
    latency: Hist,
    served: [u64; 3],
    line_buf: Vec<u64>,
}

impl<F: Fn(u64, usize) -> u32> std::fmt::Debug for ObsSink<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsSink")
            .field("scope", &self.scope)
            .field("keys", &self.dists.len())
            .finish_non_exhaustive()
    }
}

impl<F: Fn(u64, usize) -> u32> ObsSink<F> {
    /// Creates a sink for one run. `cluster_of` maps `(cta, sm_id)` to a
    /// cluster id: baseline runs typically use the partition assignment
    /// of the CTA's data, agent-based runs use the SM (the paper binds
    /// one cluster per SM), and runs without a meaningful clustering can
    /// pass `|_, _| 0`.
    pub fn new(scope: impl Into<String>, cluster_of: F) -> Self {
        ObsSink {
            scope: scope.into(),
            cluster_of,
            line_bytes: 128,
            dists: BTreeMap::new(),
            latency: Hist::new(),
            served: [0; 3],
            line_buf: Vec::new(),
        }
    }

    /// Overrides the line granularity used for reuse distances
    /// (default 128 bytes, the L1 line of every modelled GPU).
    pub fn with_line_bytes(mut self, line_bytes: u64) -> Self {
        self.line_bytes = line_bytes.max(1);
        self
    }

    /// Flushes everything accumulated onto `obs`. Call once, after the
    /// simulation completes.
    pub fn finish(self, obs: &cta_obs::Obs) {
        let scope = &self.scope;
        obs.hist_absorb("sim/load_latency", scope, &self.latency);
        for (level, n) in ["sim/served_l1", "sim/served_l2", "sim/served_dram"]
            .iter()
            .zip(self.served)
        {
            if n > 0 {
                obs.counter(level, scope, n);
            }
        }
        for ((tag, cluster), dist) in &self.dists {
            let key = format!("{scope}/tag{tag}/c{cluster}");
            let mut h = Hist::new();
            for (d, n) in dist.histogram() {
                h.record_n(d, n);
            }
            obs.hist_absorb("locality/reuse_distance", &key, &h);
            obs.counter("locality/cold_lines", &key, dist.cold_misses());
        }
    }
}

impl<F: Fn(u64, usize) -> u32> TraceSink for ObsSink<F> {
    fn record(&mut self, e: &AccessEvent<'_>) {
        if e.is_write || e.is_atomic {
            return;
        }
        self.latency.record(e.latency);
        self.served[match e.served_by {
            Level::L1 => 0,
            Level::L2 => 1,
            Level::Dram => 2,
        }] += 1;
        let cluster = (self.cluster_of)(e.cta, e.sm_id);
        let dist = self.dists.entry((e.tag, cluster)).or_default();
        // One distance sample per distinct line per warp instruction
        // (lanes hitting the same line are one request).
        self.line_buf.clear();
        for &addr in e.addrs {
            let line = addr / self.line_bytes;
            if !self.line_buf.contains(&line) {
                self.line_buf.push(line);
                dist.access(line);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_event(cta: u64, tag: u16, addrs: Vec<u64>, served_by: Level) -> OwnedEvent {
        OwnedEvent {
            cta,
            tag,
            addrs,
            served_by,
        }
    }

    struct OwnedEvent {
        cta: u64,
        tag: u16,
        addrs: Vec<u64>,
        served_by: Level,
    }

    fn feed<F: Fn(u64, usize) -> u32>(sink: &mut ObsSink<F>, ev: &OwnedEvent, is_write: bool) {
        sink.record(&AccessEvent {
            time: 0,
            sm_id: 0,
            slot: 0,
            cta: ev.cta,
            warp: 0,
            tag: ev.tag,
            is_write,
            is_atomic: false,
            bytes_per_lane: 4,
            addrs: &ev.addrs,
            latency: 7,
            served_by: ev.served_by,
        });
    }

    #[test]
    fn distances_are_keyed_by_tag_and_cluster() {
        let obs = cta_obs::Obs::new();
        let mut sink = ObsSink::new("T/APP/BSL", |cta, _sm| (cta % 2) as u32);
        // CTA 0 (cluster 0) touches line 0 twice with one line between:
        // distance 1. CTA 1 (cluster 1) touches line 0 once: cold only.
        for ev in [
            read_event(0, 3, vec![0], Level::Dram),
            read_event(0, 3, vec![128], Level::Dram),
            read_event(0, 3, vec![0], Level::L1),
            read_event(1, 3, vec![0], Level::L2),
        ] {
            feed(&mut sink, &ev, false);
        }
        feed(&mut sink, &read_event(0, 3, vec![256], Level::Dram), true); // write: ignored
        sink.finish(&obs);
        let snap = obs.snapshot();
        let h = snap
            .hist("locality/reuse_distance", "T/APP/BSL/tag3/c0")
            .expect("cluster 0 histogram");
        assert_eq!(h.count, 1); // the distance-1 reuse
        assert_eq!(snap.counter("locality/cold_lines", "T/APP/BSL/tag3/c0"), 2);
        assert_eq!(snap.counter("locality/cold_lines", "T/APP/BSL/tag3/c1"), 1);
        assert!(snap
            .hist("locality/reuse_distance", "T/APP/BSL/tag3/c1")
            .is_none_or(|h| h.count == 0));
        assert_eq!(snap.counter("sim/served_l1", "T/APP/BSL"), 1);
        assert_eq!(snap.counter("sim/served_l2", "T/APP/BSL"), 1);
        assert_eq!(snap.counter("sim/served_dram", "T/APP/BSL"), 2);
        // 4 reads recorded, writes excluded.
        assert_eq!(snap.hist("sim/load_latency", "T/APP/BSL").unwrap().count, 4);
    }

    #[test]
    fn lanes_on_one_line_are_one_sample() {
        let obs = cta_obs::Obs::new();
        let mut sink = ObsSink::new("s", |_, _| 0);
        feed(
            &mut sink,
            &read_event(0, 0, vec![0, 4, 8, 128], Level::L2),
            false,
        );
        sink.finish(&obs);
        let snap = obs.snapshot();
        // Two distinct lines, both cold.
        assert_eq!(snap.counter("locality/cold_lines", "s/tag0/c0"), 2);
    }
}
