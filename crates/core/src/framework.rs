//! The inter-CTA locality-aware optimization framework (paper §4.4,
//! Figure 11).
//!
//! The framework estimates a kernel's locality source with coarse probes,
//! decides whether its inter-CTA locality is exploitable, and assembles
//! the matching transform stack:
//!
//! * exploitable (algorithm / cache-line) → agent-based clustering along
//!   the better partition axis, plus CTA throttling and bypassing of
//!   streaming arrays;
//! * unexploitable (data / write / streaming) → clustering used only to
//!   *reshape the CTA order*, enabling cross-CTA prefetching.

use crate::agent::AgentKernel;
use crate::bypass::BypassKernel;
use crate::error::ClusterError;
use crate::partition::Partition;
use locality::{
    Category, CategoryProfiler, ReuseProfiler, ReuseSummary, Signature, TagReuseProfiler,
};

use gpu_sim::{occupancy, AccessEvent, ArrayTag, GpuConfig, KernelSpec, Simulation, TraceSink};

/// Minimum word accesses before an array's reuse rate is trusted enough
/// to call it streaming (§4.3-(II) bypass candidate selection).
const STREAMING_MIN_ACCESSES: u64 = 64;

/// Clamps a requested `ACTIVE_AGENTS` into the valid throttle range
/// `1..=max_agents`.
///
/// This is the single source of truth for how out-of-range throttle
/// requests are repaired: [`Framework::apply`] clamps plans through it
/// instead of trusting callers, and the `cta-analyzer` `CL026` lint
/// reports exactly the values this function would change. Keeping both
/// sides on one function guarantees the static verdict and the runtime
/// behaviour agree.
pub fn clamp_active_agents(active: u32, max_agents: u32) -> u32 {
    active.clamp(1, max_agents.max(1))
}

/// The partition axis selected by the framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// X-partitioning (column-major indexing).
    X,
    /// Y-partitioning (row-major indexing).
    Y,
}

impl Axis {
    /// Builds the corresponding partition for `grid` into `clusters`.
    pub fn partition(self, grid: gpu_sim::Dim3, clusters: u64) -> Result<Partition, ClusterError> {
        match self {
            Axis::X => Partition::x(grid, clusters),
            Axis::Y => Partition::y(grid, clusters),
        }
    }
}

impl std::fmt::Display for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Axis::X => "X-P",
            Axis::Y => "Y-P",
        })
    }
}

/// Everything the probes learned about a kernel.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Detected locality-source category (Figure 4).
    pub category: Category,
    /// Raw signature metrics behind the categorization.
    pub signature: Signature,
    /// Word-granularity reuse summary (Figure 3 shares).
    pub reuse: ReuseSummary,
    /// The partition axis whose redirection probe reduced L2 traffic
    /// most.
    pub axis: Axis,
    /// Array tags whose accesses showed no reuse (bypass candidates).
    pub streaming_tags: Vec<ArrayTag>,
    /// L2 transactions of the baseline probe (denominator for later
    /// comparisons).
    pub baseline_l2: u64,
}

/// The optimization decision (Figure 5 / Figure 11 output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Detected category.
    pub category: Category,
    /// Chosen partition axis.
    pub axis: Axis,
    /// Whether clustering targets locality (exploitable) or merely
    /// reshapes order (unexploitable).
    pub exploit_locality: bool,
    /// Active agents per SM (`None` = all of `MAX_AGENTS`).
    pub active_agents: Option<u32>,
    /// Arrays to bypass around the L1.
    pub bypass: Vec<ArrayTag>,
    /// Cross-CTA prefetch depth (0 = off).
    pub prefetch: usize,
}

/// Fan-out sink feeding several profilers from one traced run.
struct ProbeSinks {
    category: CategoryProfiler,
    reuse: ReuseProfiler,
    tags: TagReuseProfiler,
}

impl TraceSink for ProbeSinks {
    fn record(&mut self, e: &AccessEvent<'_>) {
        self.category.record(e);
        self.reuse.record(e);
        self.tags.record(e);
    }
}

/// The automatic optimization framework, bound to a target GPU.
#[derive(Debug, Clone)]
pub struct Framework {
    cfg: GpuConfig,
    /// Candidate throttling degrees tried by [`tune_throttle`]
    /// (clamped to `MAX_AGENTS`).
    throttle_candidates: Vec<u32>,
}

impl Framework {
    /// Creates a framework targeting `cfg`.
    pub fn new(cfg: GpuConfig) -> Self {
        Framework {
            cfg,
            throttle_candidates: vec![1, 2, 3, 4, 6, 8, 12, 16, 24, 32],
        }
    }

    /// The target GPU.
    pub fn gpu(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The occupancy-derived `MAX_AGENTS` bound for `kernel` on this
    /// GPU — the upper limit every `ACTIVE_AGENTS` request is validated
    /// against.
    ///
    /// # Errors
    ///
    /// Propagates occupancy errors for unschedulable kernels.
    pub fn max_agents_for<K>(&self, kernel: &K) -> Result<u32, ClusterError>
    where
        K: KernelSpec + ?Sized,
    {
        Ok(occupancy(&self.cfg, &kernel.launch())?.ctas_per_sm)
    }

    /// Runs the categorization probes on `kernel` (Figure 11, blue
    /// stages): one traced baseline run plus one redirection probe per
    /// axis.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures as [`ClusterError::Sim`].
    pub fn analyze<K>(&self, kernel: &K) -> Result<Analysis, ClusterError>
    where
        K: KernelSpec + Clone,
    {
        let mut sinks = ProbeSinks {
            category: CategoryProfiler::with_line_bytes(128),
            reuse: ReuseProfiler::new(),
            tags: TagReuseProfiler::new(),
        };
        let baseline = Simulation::new(self.cfg.clone(), kernel).run_traced(&mut sinks)?;

        // Axis probe: impose each clustering order and compare L2
        // traffic. Agent-based probes are used because they impose the
        // order reliably under any scheduler; the paper's cheaper
        // redirection probe needs reduced problem sizes and an RR-friendly
        // moment to be trustworthy. (Reduced problem sizes remain the
        // caller's concern; the probes run the kernel as given.)
        let m = self.cfg.num_sms as u64;
        let grid = kernel.launch().grid;
        let mut best = (Axis::Y, u64::MAX);
        for axis in [Axis::Y, Axis::X] {
            let partition = axis.partition(grid, m)?;
            let probe = AgentKernel::with_partition(kernel.clone(), &self.cfg, partition)?;
            let stats = Simulation::new(self.cfg.clone(), &probe).run()?;
            if stats.l2_transactions() < best.1 {
                best = (axis, stats.l2_transactions());
            }
        }

        let streaming_tags: Vec<ArrayTag> = sinks.tags.streaming_tags(STREAMING_MIN_ACCESSES);

        let category = sinks.category.classify();
        if let Some(obs) = cta_obs::maybe_global() {
            let name = kernel.name();
            obs.counter("framework/classified", &format!("{name}/{category:?}"), 1);
            obs.counter("framework/axis", &format!("{name}/{:?}", best.0), 1);
            sinks.reuse.record_obs(obs, &name);
        }

        Ok(Analysis {
            category,
            signature: sinks.category.signature(),
            reuse: sinks.reuse.summary(),
            axis: best.0,
            streaming_tags,
            baseline_l2: baseline.l2_transactions(),
        })
    }

    /// Runs only the bypass probe of the Figure 11 flow: one traced
    /// baseline with the per-tag reuse profiler, returning the streaming
    /// arrays worth routing around the L1. Exactly the
    /// [`Analysis::streaming_tags`] field [`analyze`](Self::analyze)
    /// would produce (the tag profiler observes the same deterministic
    /// stream), at one simulation instead of three and one sink instead
    /// of three — for callers like the benchmark harness that derive the
    /// axis and category elsewhere.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures as [`ClusterError::Sim`].
    pub fn streaming_tags<K>(&self, kernel: &K) -> Result<Vec<ArrayTag>, ClusterError>
    where
        K: KernelSpec,
    {
        let mut tags = TagReuseProfiler::new();
        Simulation::new(self.cfg.clone(), kernel).run_traced(&mut tags)?;
        Ok(tags.streaming_tags(STREAMING_MIN_ACCESSES))
    }

    /// [`streaming_tags`](Self::streaming_tags) computed by statically
    /// walking the warp programs instead of simulating them.
    ///
    /// Produces the *same* tag set as the traced probe: the selection
    /// reads only each tag's total word accesses and reuse count, and
    /// both totals are order-independent functions of the access
    /// multiset (`reuses = accesses - distinct words`). The timing
    /// model never changes which accesses execute, so enumerating the
    /// warp programs with [`gpu_sim::walk`] feeds the profiler the same
    /// multiset the engine's trace would — at program-generation cost,
    /// with no cache or latency simulation. `probe_equivalence` pins the
    /// equality per-app; the figure byte-diffs pin it matrix-wide.
    ///
    /// Only valid for kernels without prefetch ops (the walk feeder
    /// skips `PrefetchL1` loads, the engine traces them): the harness
    /// probes the *baseline* kernel, which has none.
    pub fn streaming_tags_static<K>(&self, kernel: &K) -> Vec<ArrayTag>
    where
        K: KernelSpec + ?Sized,
    {
        let mut tags = locality::StaticFeed::new(TagReuseProfiler::new());
        gpu_sim::walk::each_warp_program_on(kernel, &self.cfg, |ctx, warp, prog| {
            for op in prog {
                tags.op(ctx.cta, ctx.sm_id, warp, op);
            }
        });
        tags.into_inner().streaming_tags(STREAMING_MIN_ACCESSES)
    }

    /// Derives the optimization plan from an analysis (Figure 5).
    pub fn plan(&self, analysis: &Analysis) -> Plan {
        let exploit = analysis.category.exploitable();
        Plan {
            category: analysis.category,
            axis: analysis.axis,
            exploit_locality: exploit,
            active_agents: None, // tuned separately or via Table 2 hints
            bypass: if exploit {
                analysis.streaming_tags.clone()
            } else {
                Vec::new()
            },
            prefetch: if exploit { 0 } else { 2 },
        }
    }

    /// Sweeps throttling degrees for the planned agent kernel and
    /// returns the cycle-optimal `ACTIVE_AGENTS` (the paper's dynamic
    /// CTA-voting stand-in).
    ///
    /// # Errors
    ///
    /// Propagates construction and simulation failures.
    pub fn tune_throttle<K>(&self, kernel: &K, plan: &Plan) -> Result<u32, ClusterError>
    where
        K: KernelSpec + Clone,
    {
        let partition = plan
            .axis
            .partition(kernel.launch().grid, self.cfg.num_sms as u64)?;
        let base = AgentKernel::with_partition(kernel.clone(), &self.cfg, partition)?;
        let max = base.max_agents();
        let mut best = (max, u64::MAX);
        let mut candidates: Vec<u32> = self
            .throttle_candidates
            .iter()
            .copied()
            .filter(|&c| c <= max)
            .collect();
        if !candidates.contains(&max) {
            candidates.push(max);
        }
        for active in candidates {
            let throttled = base.clone().with_active_agents(active)?;
            let stats = Simulation::new(self.cfg.clone(), &throttled).run()?;
            if stats.cycles < best.1 {
                best = (active, stats.cycles);
            }
        }
        Ok(best.0)
    }

    /// Assembles the transformed kernel according to `plan`.
    ///
    /// An out-of-range `plan.active_agents` is not trusted: it is
    /// repaired through [`clamp_active_agents`] against the
    /// occupancy-derived `MAX_AGENTS` (the same rule the `cta-analyzer`
    /// `CL026` lint reports on), so a plan tuned for one architecture
    /// degrades gracefully instead of failing on another.
    ///
    /// # Errors
    ///
    /// Propagates construction failures (cluster/SM mismatch, occupancy).
    pub fn apply<K>(&self, kernel: K, plan: &Plan) -> Result<Box<dyn KernelSpec>, ClusterError>
    where
        K: KernelSpec + Clone + 'static,
    {
        let partition = plan
            .axis
            .partition(kernel.launch().grid, self.cfg.num_sms as u64)?;
        let bypassed = BypassKernel::new(kernel, plan.bypass.clone());
        let mut agents = AgentKernel::with_partition(bypassed, &self.cfg, partition)?;
        if let Some(active) = plan.active_agents {
            let clamped = clamp_active_agents(active, agents.max_agents());
            agents = agents.with_active_agents(clamped)?;
        }
        if plan.prefetch > 0 {
            agents = agents.with_prefetch(plan.prefetch);
        }
        Ok(Box::new(agents))
    }

    /// One-shot pipeline: analyze, plan, tune throttling, apply.
    ///
    /// # Errors
    ///
    /// Propagates any probe or construction failure.
    pub fn optimize<K>(&self, kernel: K) -> Result<(Box<dyn KernelSpec>, Plan), ClusterError>
    where
        K: KernelSpec + Clone + 'static,
    {
        let analysis = self.analyze(&kernel)?;
        let mut plan = self.plan(&analysis);
        if plan.exploit_locality {
            plan.active_agents = Some(self.tune_throttle(&kernel, &plan)?);
        }
        let transformed = self.apply(kernel, &plan)?;
        Ok((transformed, plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{arch, CtaContext, Dim3, LaunchConfig, MemAccess, Op, Program};

    /// Algorithm-flavoured probe: all CTAs of a grid row share a table.
    #[derive(Debug, Clone)]
    struct RowShared;

    impl KernelSpec for RowShared {
        fn name(&self) -> String {
            "row-shared".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::plane(8, 16), 64u32)
        }
        fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
            let (bx, by, _) = self.launch().grid.coords_row_major(ctx.cta);
            vec![
                // Shared across the row (indexed by `by`).
                Op::Load(MemAccess::coalesced(0, by as u64 * 512, 32, 4)),
                Op::Load(MemAccess::coalesced(0, by as u64 * 512 + 128, 32, 4)),
                // Private stream.
                Op::Load(MemAccess::coalesced(
                    1,
                    (1 << 32) + (ctx.cta * 2 + warp as u64) * 128 * 8 + bx as u64,
                    32,
                    4,
                )),
            ]
        }
    }

    /// Pure streaming probe.
    #[derive(Debug, Clone)]
    struct Stream;

    impl KernelSpec for Stream {
        fn name(&self) -> String {
            "stream".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::linear(64), 64u32)
        }
        fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
            let base = (ctx.cta * 2 + warp as u64) * 128;
            vec![
                Op::Load(MemAccess::coalesced(0, base, 32, 4)),
                Op::Store(MemAccess::coalesced(1, (1 << 33) + base, 32, 4)),
            ]
        }
    }

    #[test]
    fn detects_algorithm_and_picks_y_axis() {
        let fw = Framework::new(arch::gtx570());
        let analysis = fw.analyze(&RowShared).unwrap();
        assert_eq!(analysis.category, Category::Algorithm);
        assert_eq!(analysis.axis, Axis::Y);
        assert!(analysis.streaming_tags.contains(&1));
        assert!(!analysis.streaming_tags.contains(&0));
        let plan = fw.plan(&analysis);
        assert!(plan.exploit_locality);
        assert_eq!(plan.prefetch, 0);
    }

    #[test]
    fn streaming_gets_prefetch_plan() {
        let fw = Framework::new(arch::gtx980());
        let analysis = fw.analyze(&Stream).unwrap();
        assert_eq!(analysis.category, Category::Streaming);
        let plan = fw.plan(&analysis);
        assert!(!plan.exploit_locality);
        assert_eq!(plan.prefetch, 2);
        assert!(plan.bypass.is_empty());
    }

    #[test]
    fn probe_equivalence() {
        // The static walk must select exactly the tags the traced probe
        // selects — the harness's bypass variant depends on the equality.
        for cfg in [arch::gtx570(), arch::gtx980()] {
            let fw = Framework::new(cfg);
            for (name, dynamic, stat) in [
                (
                    "row-shared",
                    fw.streaming_tags(&RowShared).unwrap(),
                    fw.streaming_tags_static(&RowShared),
                ),
                (
                    "stream",
                    fw.streaming_tags(&Stream).unwrap(),
                    fw.streaming_tags_static(&Stream),
                ),
            ] {
                assert_eq!(dynamic, stat, "{name} on {}", fw.gpu().name);
            }
        }
    }

    #[test]
    fn apply_builds_runnable_kernel() {
        let fw = Framework::new(arch::tesla_k40());
        let (optimized, plan) = fw.optimize(RowShared).unwrap();
        assert!(plan.exploit_locality);
        let stats = Simulation::new(arch::tesla_k40(), &optimized)
            .run()
            .unwrap();
        // All original work executed: same number of shared+private loads.
        assert!(stats.instructions > 0);
    }

    #[test]
    fn apply_clamps_out_of_range_throttle() {
        let fw = Framework::new(arch::gtx570());
        let max = fw.max_agents_for(&RowShared).unwrap();
        let analysis = fw.analyze(&RowShared).unwrap();
        let mut plan = fw.plan(&analysis);
        // A plan tuned on a bigger GPU must degrade gracefully, not fail.
        plan.active_agents = Some(max + 100);
        let k = fw.apply(RowShared, &plan).unwrap();
        assert!(k.name().contains(&format!("x{max}/{max}")));
        // Zero is repaired up to one active agent.
        plan.active_agents = Some(0);
        let k = fw.apply(RowShared, &plan).unwrap();
        assert!(k.name().contains(&format!("x1/{max}")));
    }

    #[test]
    fn clamp_matches_analyzer_rule() {
        assert_eq!(clamp_active_agents(0, 8), 1);
        assert_eq!(clamp_active_agents(5, 8), 5);
        assert_eq!(clamp_active_agents(9, 8), 8);
        assert_eq!(clamp_active_agents(3, 0), 1);
    }

    #[test]
    fn tune_throttle_returns_valid_degree() {
        let fw = Framework::new(arch::gtx570());
        let analysis = fw.analyze(&RowShared).unwrap();
        let plan = fw.plan(&analysis);
        let best = fw.tune_throttle(&RowShared, &plan).unwrap();
        assert!(best >= 1);
        assert!(best <= 8);
    }
}
