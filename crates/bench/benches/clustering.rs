//! Criterion ablations of the clustering transforms themselves:
//! baseline vs redirection vs agents vs throttled agents on a fixed
//! workload — the design-choice comparison DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cta_clustering::{AgentKernel, Partition, RedirectionKernel};
use gpu_kernels::Syrk;
use gpu_sim::{arch, KernelSpec, Simulation};

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering_ablation");
    group.sample_size(10);
    let cfg = arch::tesla_k40().prefer_l1(0);
    let syk = Syrk::new(2, 16);
    let partition = || Partition::x(syk.launch().grid, cfg.num_sms as u64).unwrap();

    group.bench_function(BenchmarkId::from_parameter("baseline"), |b| {
        b.iter(|| Simulation::new(cfg.clone(), &syk).run().unwrap())
    });
    let rd = RedirectionKernel::new(syk.clone(), partition());
    group.bench_function(BenchmarkId::from_parameter("redirection"), |b| {
        b.iter(|| Simulation::new(cfg.clone(), &rd).run().unwrap())
    });
    let clu = AgentKernel::with_partition(syk.clone(), &cfg, partition()).unwrap();
    group.bench_function(BenchmarkId::from_parameter("agents"), |b| {
        b.iter(|| Simulation::new(cfg.clone(), &clu).run().unwrap())
    });
    let tot = AgentKernel::with_partition(syk.clone(), &cfg, partition())
        .unwrap()
        .with_active_agents(2)
        .unwrap();
    group.bench_function(BenchmarkId::from_parameter("agents_throttled_2"), |b| {
        b.iter(|| Simulation::new(cfg.clone(), &tot).run().unwrap())
    });
    group.finish();
}

fn bench_transform_overhead(c: &mut Criterion) {
    // Program-generation overhead of the wrappers (the "complex index
    // calculation" cost of §5.2-(6), measured at the source).
    let cfg = arch::tesla_k40();
    let syk = Syrk::new(2, 16);
    let partition = Partition::x(syk.launch().grid, cfg.num_sms as u64).unwrap();
    let agents = AgentKernel::with_partition(syk.clone(), &cfg, partition).unwrap();
    let ctx = gpu_sim::CtaContext {
        cta: 0,
        sm_id: 3,
        slot: 1,
        arrival: 1,
        num_sms: cfg.num_sms,
    };
    let mut group = c.benchmark_group("program_generation");
    group.bench_function("inner_kernel", |b| b.iter(|| syk.warp_program(&ctx, 0)));
    group.bench_function("agent_wrapped", |b| b.iter(|| agents.warp_program(&ctx, 0)));
    group.finish();
}

criterion_group!(benches, bench_variants, bench_transform_overhead);
criterion_main!(benches);
