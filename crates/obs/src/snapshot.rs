//! The ordered merge: per-thread sinks → one [`Snapshot`].
//!
//! Counters and histograms merge commutatively (key-wise sums), so the
//! merged view is independent of thread count and scheduling order. Span
//! events are reconstructed per thread, in recording order, into
//! completed [`TraceSpan`]s; malformed streams (an `end` without a
//! matching `begin`, a worker that never closed a span, a ring that
//! overflowed) surface as structured [`ObsError`]s — never panics — so a
//! buggy instrumentation site degrades the telemetry, not the run.

use crate::hist::Hist;
use crate::recorder::{SpanKind, ThreadState};
use std::collections::BTreeMap;

/// Aggregate view of all spans sharing a name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Completed spans with this name.
    pub count: u64,
    /// Deepest nesting level any of them ran at (0 = top level).
    pub max_depth: u32,
}

/// One completed span, with wall-clock bounds for the Chrome exporter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Span label.
    pub name: String,
    /// Recording thread (sink registration index).
    pub thread: u32,
    /// Begin, nanoseconds since the recorder epoch.
    pub begin_ns: u64,
    /// End, nanoseconds since the recorder epoch (`>= begin_ns`).
    pub end_ns: u64,
    /// Nesting depth at begin (0 = top level).
    pub depth: u32,
}

/// A structured telemetry defect found during the merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsError {
    /// A span was opened but never closed by its worker.
    UnbalancedBegin {
        /// Recording thread.
        thread: u32,
        /// Span label.
        name: String,
    },
    /// A span end arrived with no matching open span.
    UnbalancedEnd {
        /// Recording thread.
        thread: u32,
        /// Span label.
        name: String,
    },
    /// A thread's ring overflowed and dropped its oldest events.
    DroppedEvents {
        /// Recording thread.
        thread: u32,
        /// Events overwritten.
        count: u64,
    },
}

impl ObsError {
    /// Stable machine-readable kind label (JSONL `kind` field).
    pub fn kind(&self) -> &'static str {
        match self {
            ObsError::UnbalancedBegin { .. } => "unbalanced_begin",
            ObsError::UnbalancedEnd { .. } => "unbalanced_end",
            ObsError::DroppedEvents { .. } => "dropped_events",
        }
    }

    /// The span label the error refers to (empty for drops).
    pub fn name(&self) -> &str {
        match self {
            ObsError::UnbalancedBegin { name, .. } | ObsError::UnbalancedEnd { name, .. } => name,
            ObsError::DroppedEvents { .. } => "",
        }
    }
}

/// The merged, queryable state of a recorder at one point in time.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(metric, key) → summed value` over all threads.
    pub counters: BTreeMap<(String, String), u64>,
    /// `(metric, key) → merged histogram` over all threads.
    pub hists: BTreeMap<(String, String), Hist>,
    /// Per-name span aggregates (deterministic across thread counts).
    pub spans: BTreeMap<String, SpanAgg>,
    /// Completed spans with timestamps, ordered `(thread, begin, seq)` —
    /// the Chrome exporter's input. Not deterministic across runs.
    pub trace: Vec<TraceSpan>,
    /// Merge defects, sorted `(kind, name, thread)`.
    pub errors: Vec<ObsError>,
    /// Total ring-overflow drops across threads.
    pub dropped: u64,
}

impl Snapshot {
    /// Builds a snapshot from per-thread states (sorted by thread index).
    pub(crate) fn merge(per_thread: Vec<(u32, ThreadState)>) -> Snapshot {
        let mut snap = Snapshot::default();
        for (thread, state) in per_thread {
            for ((name, key), v) in state.counters {
                *snap.counters.entry((name, key)).or_insert(0) += v;
            }
            for ((name, key), h) in state.hists {
                snap.hists.entry((name, key)).or_default().absorb(&h);
            }
            if state.dropped > 0 {
                snap.dropped += state.dropped;
                snap.errors.push(ObsError::DroppedEvents {
                    thread,
                    count: state.dropped,
                });
            }
            // Reconstruct this thread's span stream. Ring events are in
            // recording order; seq gaps (from drops) are tolerated.
            let mut stack: Vec<(String, u64)> = Vec::new();
            for ev in state.ring {
                match ev.kind {
                    SpanKind::Begin => stack.push((ev.name, ev.ts_ns)),
                    SpanKind::End => {
                        match stack.iter().rposition(|(n, _)| *n == ev.name) {
                            None => snap.errors.push(ObsError::UnbalancedEnd {
                                thread,
                                name: ev.name,
                            }),
                            Some(pos) => {
                                // Anything opened above the match was
                                // abandoned by its worker.
                                for (name, _) in stack.drain(pos + 1..) {
                                    snap.errors.push(ObsError::UnbalancedBegin { thread, name });
                                }
                                let (name, begin_ns) = stack.pop().expect("matched position");
                                let depth = stack.len() as u32;
                                let agg = snap.spans.entry(name.clone()).or_default();
                                agg.count += 1;
                                agg.max_depth = agg.max_depth.max(depth);
                                snap.trace.push(TraceSpan {
                                    name,
                                    thread,
                                    begin_ns,
                                    end_ns: ev.ts_ns.max(begin_ns),
                                    depth,
                                });
                            }
                        }
                    }
                }
            }
            for (name, _) in stack {
                snap.errors.push(ObsError::UnbalancedBegin { thread, name });
            }
        }
        snap.trace
            .sort_by(|a, b| (a.thread, a.begin_ns, &a.name).cmp(&(b.thread, b.begin_ns, &b.name)));
        snap.errors.sort_by(|a, b| {
            (a.kind(), a.name(), thread_of(a)).cmp(&(b.kind(), b.name(), thread_of(b)))
        });
        snap
    }

    /// Summed counter value (0 when absent).
    pub fn counter(&self, name: &str, key: &str) -> u64 {
        self.counters
            .get(&(name.to_string(), key.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Sum of a metric's counter values over every key.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Merged histogram for `(name, key)`, if recorded.
    pub fn hist(&self, name: &str, key: &str) -> Option<&Hist> {
        self.hists.get(&(name.to_string(), key.to_string()))
    }

    /// Total sample mass of a histogram metric over every key.
    pub fn hist_mass(&self, name: &str) -> u64 {
        self.hists
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, h)| h.mass())
            .sum()
    }

    /// Completed spans with the given name.
    pub fn span_count(&self, name: &str) -> u64 {
        self.spans.get(name).map(|a| a.count).unwrap_or(0)
    }
}

fn thread_of(e: &ObsError) -> u32 {
    match e {
        ObsError::UnbalancedBegin { thread, .. }
        | ObsError::UnbalancedEnd { thread, .. }
        | ObsError::DroppedEvents { thread, .. } => *thread,
    }
}

#[cfg(test)]
impl ObsError {
    /// Test helper: the thread index regardless of variant.
    pub(crate) fn thread_for_test(&self) -> u32 {
        thread_of(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Obs, ObsError};

    #[test]
    fn nested_spans_get_depths() {
        let obs = Obs::new();
        {
            let _outer = obs.span("outer");
            let _inner = obs.span("inner");
        }
        let snap = obs.snapshot();
        assert_eq!(snap.spans["outer"].max_depth, 0);
        assert_eq!(snap.spans["inner"].max_depth, 1);
        assert!(snap.errors.is_empty());
    }

    #[test]
    fn unbalanced_begin_is_structured_error_not_panic() {
        let obs = Obs::new();
        obs.span_begin("leaked");
        let snap = obs.snapshot();
        assert_eq!(snap.span_count("leaked"), 0);
        assert_eq!(
            snap.errors,
            vec![ObsError::UnbalancedBegin {
                thread: snap.errors[0].thread_for_test(),
                name: "leaked".into()
            }]
        );
    }

    #[test]
    fn unbalanced_end_is_structured_error_not_panic() {
        let obs = Obs::new();
        obs.span_end("phantom");
        let snap = obs.snapshot();
        assert!(matches!(
            &snap.errors[..],
            [ObsError::UnbalancedEnd { name, .. }] if name == "phantom"
        ));
    }

    #[test]
    fn interleaved_end_closes_match_and_reports_abandoned() {
        let obs = Obs::new();
        obs.span_begin("a");
        obs.span_begin("b");
        obs.span_end("a"); // b was abandoned
        let snap = obs.snapshot();
        assert_eq!(snap.span_count("a"), 1);
        assert!(matches!(
            &snap.errors[..],
            [ObsError::UnbalancedBegin { name, .. }] if name == "b"
        ));
    }

    #[test]
    fn merged_trace_is_monotone_per_thread() {
        let obs = Obs::new();
        std::thread::scope(|s| {
            for t in 0..3 {
                let obs = obs.clone();
                s.spawn(move || {
                    for i in 0..20 {
                        let _g = obs.span(format!("t{t}/job{i}"));
                        std::hint::black_box(i);
                    }
                });
            }
        });
        let snap = obs.snapshot();
        assert!(snap.errors.is_empty());
        // Within each thread, begins are non-decreasing and every span
        // ends at or after it begins.
        for w in snap.trace.windows(2) {
            if w[0].thread == w[1].thread {
                assert!(w[0].begin_ns <= w[1].begin_ns);
            }
        }
        for t in &snap.trace {
            assert!(t.end_ns >= t.begin_ns);
        }
    }
}
