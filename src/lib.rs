//! # cta-clustering-repro
//!
//! Umbrella crate for the reproduction of *"Locality-Aware CTA Clustering
//! for Modern GPUs"* (Li et al., ASPLOS 2017). It re-exports the workspace
//! crates so the repository-level examples and integration tests can use
//! the whole stack through one dependency:
//!
//! * [`gpu_sim`] — the GPU execution-model simulator substrate;
//! * [`gpu_kernels`] — the 33 benchmark workload models (Table 2 + Fig. 3);
//! * [`locality`] — inter-CTA reuse quantification and classification;
//! * [`cta_clustering`] — the paper's contribution: partitioning,
//!   inverting, binding, agents, throttling, bypassing, prefetching and
//!   the automatic framework;
//! * [`cluster_bench`] — the harness regenerating every table and figure.
//!
//! See `examples/quickstart.rs` for the one-minute tour and `DESIGN.md`
//! for the system inventory and experiment index.

pub use cluster_bench;
pub use cta_clustering;
pub use gpu_kernels;
pub use gpu_sim;
pub use locality;
