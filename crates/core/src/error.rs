//! Error types for the clustering transforms.

use gpu_sim::SimError;
use std::error::Error as StdError;
use std::fmt;

/// Errors produced when constructing or applying clustering transforms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// The partition geometry is malformed (zero clusters, empty grid,
    /// tile sizes of zero, ...).
    InvalidPartition(String),
    /// Agent-based clustering requires exactly one cluster per SM.
    ClusterSmMismatch {
        /// Clusters in the partition.
        clusters: u64,
        /// SMs on the target GPU.
        sms: usize,
    },
    /// The throttling degree is out of range.
    InvalidThrottle {
        /// Requested active agents.
        active: u32,
        /// Maximum allowable agents per SM.
        max: u32,
    },
    /// An underlying simulation failed (framework probe runs).
    Sim(SimError),
    /// A harness-level step failed (launching a child binary, resolving a
    /// workload, extracting an expected measurement). The message carries
    /// the full context of what was attempted.
    Harness(String),
}

impl ClusterError {
    /// Builds a [`ClusterError::Harness`] from any displayable context.
    pub fn harness(msg: impl Into<String>) -> Self {
        ClusterError::Harness(msg.into())
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidPartition(msg) => write!(f, "invalid partition: {msg}"),
            ClusterError::ClusterSmMismatch { clusters, sms } => write!(
                f,
                "agent clustering needs one cluster per SM, got {clusters} clusters for {sms} SMs"
            ),
            ClusterError::InvalidThrottle { active, max } => {
                write!(f, "throttle degree {active} outside 1..={max}")
            }
            ClusterError::Sim(e) => write!(f, "probe simulation failed: {e}"),
            ClusterError::Harness(msg) => write!(f, "harness failure: {msg}"),
        }
    }
}

impl StdError for ClusterError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            ClusterError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ClusterError {
    fn from(e: SimError) -> Self {
        ClusterError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ClusterError::ClusterSmMismatch {
            clusters: 10,
            sms: 15,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("15"));
        let e = ClusterError::from(SimError::InvalidConfig("x".into()));
        assert!(e.source_is_sim());
    }

    impl ClusterError {
        fn source_is_sim(&self) -> bool {
            matches!(self, ClusterError::Sim(_))
        }
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClusterError>();
    }
}
