//! The deterministic JSONL exporter, plus a hand-rolled parser and
//! schema validator (no serde in the build environment — same rationale
//! as `cta_analyzer::json`).
//!
//! One JSON object per line: a header, then counters, histograms, span
//! aggregates and errors, each section sorted by its natural key. The
//! export contains *only* logical content — no wall-clock timestamps, no
//! thread ids — so a run's JSONL is byte-identical at any worker-thread
//! count. Wall-clock metrics (counter/histogram names starting with
//! `time/`) are excluded here and live in the Chrome trace instead.

use crate::snapshot::Snapshot;
use std::collections::BTreeMap;

/// Schema identifier emitted in (and required of) the header line.
pub const SCHEMA: &str = "cta-obs/v1";

/// Prefix marking wall-clock metrics excluded from deterministic export.
pub const TIME_PREFIX: &str = "time/";

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a snapshot as deterministic JSONL.
pub fn render_jsonl(snap: &Snapshot, bin: &str) -> String {
    let counters: Vec<_> = snap
        .counters
        .iter()
        .filter(|((n, _), _)| !n.starts_with(TIME_PREFIX))
        .collect();
    let hists: Vec<_> = snap
        .hists
        .iter()
        .filter(|((n, _), _)| !n.starts_with(TIME_PREFIX))
        .collect();
    // Errors aggregate by (kind, name): thread indices depend on
    // scheduling and must not reach the deterministic export.
    let mut errors: BTreeMap<(&'static str, &str), u64> = BTreeMap::new();
    for e in &snap.errors {
        *errors.entry((e.kind(), e.name())).or_insert(0) += 1;
    }

    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":\"{}\",\"bin\":\"{}\",\"counters\":{},\"hists\":{},\"spans\":{},\"errors\":{},\"dropped\":{}}}\n",
        SCHEMA,
        escape(bin),
        counters.len(),
        hists.len(),
        snap.spans.len(),
        errors.len(),
        snap.dropped,
    ));
    for ((name, key), v) in counters {
        out.push_str(&format!(
            "{{\"t\":\"counter\",\"name\":\"{}\",\"key\":\"{}\",\"value\":{}}}\n",
            escape(name),
            escape(key),
            v
        ));
    }
    for ((name, key), h) in hists {
        let buckets: Vec<String> = h
            .buckets()
            .iter()
            .map(|&(b, n)| format!("[{b},{n}]"))
            .collect();
        out.push_str(&format!(
            "{{\"t\":\"hist\",\"name\":\"{}\",\"key\":\"{}\",\"count\":{},\"sum\":{},\"buckets\":[{}]}}\n",
            escape(name),
            escape(key),
            h.count,
            h.sum,
            buckets.join(",")
        ));
    }
    // Span lines carry counts only: nesting depth depends on which
    // thread ran the span relative to its parent (inline vs worker), so
    // like timestamps and thread ids it stays out of the deterministic
    // export (it is visible in the Chrome trace instead).
    for (name, agg) in &snap.spans {
        out.push_str(&format!(
            "{{\"t\":\"span\",\"name\":\"{}\",\"count\":{}}}\n",
            escape(name),
            agg.count
        ));
    }
    for ((kind, name), count) in errors {
        out.push_str(&format!(
            "{{\"t\":\"error\",\"kind\":\"{}\",\"name\":\"{}\",\"count\":{}}}\n",
            kind,
            escape(name),
            count
        ));
    }
    out
}

/// A parsed JSON value. Numbers keep their raw text so `u64` round-trips
/// without `f64` precision loss.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, as written.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a number at byte {start}"));
        }
        Ok(Json::Num(
            std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| "non-UTF-8 number")?
                .to_string(),
        ))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-UTF-8 string")?;
                    let c = s.chars().next().ok_or("empty continuation")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Parses one JSON document.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes after document at {}", p.pos));
    }
    Ok(v)
}

/// Section counts declared by (and checked against) a JSONL export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JsonlSummary {
    /// Counter lines.
    pub counters: u64,
    /// Histogram lines.
    pub hists: u64,
    /// Span lines.
    pub spans: u64,
    /// Error lines.
    pub errors: u64,
}

/// Validates a JSONL export against the `cta-obs/v1` schema: header
/// first, every line a well-formed object of a known type, sections in
/// order and sorted, section counts matching the header, no `time/`
/// metrics, and histogram bucket mass equal to the declared count.
pub fn validate(text: &str) -> Result<JsonlSummary, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty document")?;
    let header = parse_json(header).map_err(|e| format!("header: {e}"))?;
    if header.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("header schema is not {SCHEMA:?}"));
    }
    let declared = JsonlSummary {
        counters: need_u64(&header, "counters")?,
        hists: need_u64(&header, "hists")?,
        spans: need_u64(&header, "spans")?,
        errors: need_u64(&header, "errors")?,
    };
    let mut seen = JsonlSummary::default();
    // Section order and intra-section sort keys.
    let section_rank = |t: &str| match t {
        "counter" => Ok(0u8),
        "hist" => Ok(1),
        "span" => Ok(2),
        "error" => Ok(3),
        other => Err(format!("unknown line type {other:?}")),
    };
    let mut last: Option<(u8, (String, String))> = None;
    for (i, line) in lines {
        let obj = parse_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let t = obj
            .get("t")
            .and_then(Json::as_str)
            .ok_or(format!("line {}: missing \"t\"", i + 1))?
            .to_string();
        let rank = section_rank(&t).map_err(|e| format!("line {}: {e}", i + 1))?;
        let sort_key = match t.as_str() {
            "counter" | "hist" => {
                let name = need_str(&obj, "name").map_err(|e| format!("line {}: {e}", i + 1))?;
                if name.starts_with(TIME_PREFIX) {
                    return Err(format!(
                        "line {}: wall-clock metric {name:?} in deterministic export",
                        i + 1
                    ));
                }
                let key = need_str(&obj, "key").map_err(|e| format!("line {}: {e}", i + 1))?;
                if t == "counter" {
                    need_u64(&obj, "value").map_err(|e| format!("line {}: {e}", i + 1))?;
                    seen.counters += 1;
                } else {
                    let count =
                        need_u64(&obj, "count").map_err(|e| format!("line {}: {e}", i + 1))?;
                    let mass = bucket_mass(&obj).map_err(|e| format!("line {}: {e}", i + 1))?;
                    if mass != count {
                        return Err(format!(
                            "line {}: histogram mass {mass} != declared count {count}",
                            i + 1
                        ));
                    }
                    seen.hists += 1;
                }
                (name, key)
            }
            "span" => {
                let name = need_str(&obj, "name").map_err(|e| format!("line {}: {e}", i + 1))?;
                need_u64(&obj, "count").map_err(|e| format!("line {}: {e}", i + 1))?;
                seen.spans += 1;
                (name, String::new())
            }
            _ => {
                let kind = need_str(&obj, "kind").map_err(|e| format!("line {}: {e}", i + 1))?;
                let name = need_str(&obj, "name").map_err(|e| format!("line {}: {e}", i + 1))?;
                seen.errors += 1;
                (kind, name)
            }
        };
        if let Some((prev_rank, prev_key)) = &last {
            if rank < *prev_rank || (rank == *prev_rank && sort_key < *prev_key) {
                return Err(format!("line {}: out of order", i + 1));
            }
        }
        last = Some((rank, sort_key));
    }
    if seen != declared {
        return Err(format!(
            "header declares {declared:?} but body has {seen:?}"
        ));
    }
    Ok(seen)
}

fn need_str(obj: &Json, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or(format!("missing string field {key:?}"))
}

fn need_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or(format!("missing integer field {key:?}"))
}

fn bucket_mass(obj: &Json) -> Result<u64, String> {
    let Some(Json::Arr(buckets)) = obj.get("buckets") else {
        return Err("missing array field \"buckets\"".into());
    };
    let mut mass = 0u64;
    for b in buckets {
        let Json::Arr(pair) = b else {
            return Err("bucket is not a [index, count] pair".into());
        };
        if pair.len() != 2 {
            return Err("bucket is not a [index, count] pair".into());
        }
        mass += pair[1].as_u64().ok_or("bucket count is not an integer")?;
    }
    Ok(mass)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    fn sample_snapshot() -> Snapshot {
        let obs = Obs::new();
        obs.counter("sim/l1_hits", "GTX570/MM/BSL/sm0", 42);
        obs.counter("sim/l1_hits", "GTX570/MM/BSL/sm1", 7);
        obs.counter("time/busy_ns", "GTX570/MM/BSL", 123_456);
        obs.hist("reuse_distance", "GTX570/MM/BSL/tag0/c1", 5);
        obs.hist("reuse_distance", "GTX570/MM/BSL/tag0/c1", 900);
        {
            let _g = obs.span("GTX570/MM/BSL");
        }
        obs.snapshot()
    }

    #[test]
    fn render_validate_roundtrip() {
        let text = render_jsonl(&sample_snapshot(), "unit");
        let summary = validate(&text).expect("valid export");
        assert_eq!(
            summary,
            JsonlSummary {
                counters: 2, // time/busy_ns excluded
                hists: 1,
                spans: 1,
                errors: 0
            }
        );
        assert!(!text.contains("time/"), "wall-clock metric leaked:\n{text}");
    }

    #[test]
    fn validator_rejects_tampering() {
        let text = render_jsonl(&sample_snapshot(), "unit");
        // Flip a histogram count so mass no longer matches.
        let bad = text.replace("\"count\":2,\"sum\":905", "\"count\":3,\"sum\":905");
        assert_ne!(text, bad);
        assert!(validate(&bad).is_err());
        // Drop the header.
        let headless: String = text.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert!(validate(&headless).is_err());
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let v = parse_json(r#"{"a":"x\"\nA","b":[1,2],"c":18446744073709551615}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_str(), Some("x\"\nA"));
        assert_eq!(v.get("c").unwrap().as_u64(), Some(u64::MAX));
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,2],").is_err());
    }

    #[test]
    fn export_is_stable_across_recording_order() {
        let a = {
            let obs = Obs::new();
            obs.counter("m", "k1", 1);
            obs.counter("m", "k2", 2);
            obs.snapshot()
        };
        let b = {
            let obs = Obs::new();
            obs.counter("m", "k2", 2);
            obs.counter("m", "k1", 1);
            obs.snapshot()
        };
        assert_eq!(render_jsonl(&a, "x"), render_jsonl(&b, "x"));
    }
}
