//! Design-space exploration over cache geometry × scheduler policy ×
//! clustering degree, pruned by the `CL2xx` cost model.
//!
//! The sweep simulates every point of a declarative configuration grid
//! and reports the per-app Pareto front over `(cycles, L2 transactions)`.
//! Before simulating, it consults the static cost model
//! ([`locality::AccessSummary`]): when the model *proves* that L1
//! geometry cannot affect a point's metrics — the L1 is write-evict and
//! the variant kernel either performs no cacheable reads or touches
//! every line exactly once — all points of that `(app, scheduler,
//! agents)` group differing only in `(size, associativity)` are one
//! equivalence class. One representative is simulated and its metrics
//! are copied to the rest, so the pruned sweep's output (and therefore
//! its Pareto front) is *identical* to the unpruned one by construction;
//! CI byte-compares the two fronts to keep the proof honest.
//!
//! The proof obligation behind the class: with write-evict, stores never
//! allocate, so L1 content is driven by reads alone; if every read
//! names a distinct line, every read is a compulsory miss at *any*
//! capacity/associativity (no reuse to retain, no same-line concurrency
//! to reserve-hit on), so cache size and way count are dead axes.

use crate::runner::{AppPlan, SimRequest};
use cta_clustering::ClusterError;
use gpu_sim::sched::{CtaScheduler, HardwareLike, Randomized, StrictRoundRobin};
use gpu_sim::{GpuConfig, RunStats, WritePolicy};
use locality::AccessSummary;

/// Seed of the `hw` scheduler axis — the engine's default scheduler
/// seed, so `sched = hw` reproduces `AppPlan::run_metered` exactly.
const HW_SEED: u64 = 0xC1A0_0017;

/// One scheduler-policy axis value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedAxis {
    /// Deterministic strict round-robin dispatch.
    Strict,
    /// The hardware-like greedy model (engine default seed).
    Hardware,
    /// Uniformly randomized dispatch (fixed seed: still deterministic).
    Random,
}

impl SchedAxis {
    /// Stable label used in config files and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            SchedAxis::Strict => "strict",
            SchedAxis::Hardware => "hw",
            SchedAxis::Random => "rand",
        }
    }

    fn parse(s: &str) -> Result<SchedAxis, ClusterError> {
        match s {
            "strict" => Ok(SchedAxis::Strict),
            "hw" => Ok(SchedAxis::Hardware),
            "rand" => Ok(SchedAxis::Random),
            other => Err(ClusterError::harness(format!(
                "unknown scheduler {other:?}; expected strict, hw or rand"
            ))),
        }
    }

    fn instantiate(&self) -> Box<dyn CtaScheduler> {
        match self {
            SchedAxis::Strict => Box::new(StrictRoundRobin::new()),
            SchedAxis::Hardware => Box::new(HardwareLike::new(HW_SEED)),
            SchedAxis::Random => Box::new(Randomized::new(HW_SEED)),
        }
    }
}

/// One clustering-degree axis value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgentsAxis {
    /// Untransformed baseline kernel.
    Baseline,
    /// Clustered, throttled to the app's Table 2 optimum (clamped to
    /// `MAX_AGENTS`).
    Opt,
    /// Clustered, throttled to a fixed degree (clamped to `MAX_AGENTS`).
    Fixed(u32),
}

impl AgentsAxis {
    /// Stable label used in config files and JSON output.
    pub fn label(&self) -> String {
        match self {
            AgentsAxis::Baseline => "0".to_string(),
            AgentsAxis::Opt => "opt".to_string(),
            AgentsAxis::Fixed(n) => n.to_string(),
        }
    }

    fn parse(s: &str) -> Result<AgentsAxis, ClusterError> {
        if s == "opt" {
            return Ok(AgentsAxis::Opt);
        }
        let n: u32 = s
            .parse()
            .map_err(|e| ClusterError::harness(format!("agents value {s:?}: {e}")))?;
        Ok(if n == 0 {
            AgentsAxis::Baseline
        } else {
            AgentsAxis::Fixed(n)
        })
    }

    /// Resolves the axis to a [`SimRequest`] for one prepared plan.
    fn request(&self, plan: &AppPlan) -> SimRequest {
        match self {
            AgentsAxis::Baseline => SimRequest::Baseline,
            AgentsAxis::Opt => {
                let opt = plan.info.opt_agents_for(plan.cfg.arch);
                SimRequest::Throttled(opt.clamp(1, plan.max_agents))
            }
            AgentsAxis::Fixed(n) => SimRequest::Throttled((*n).clamp(1, plan.max_agents)),
        }
    }
}

/// The declarative sweep grid.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Base architecture preset name (e.g. `"GTX570"`).
    pub arch: String,
    /// Table 2 app abbreviations.
    pub apps: Vec<String>,
    /// L1 capacities, in KiB.
    pub l1_size_kb: Vec<u32>,
    /// L1 way counts.
    pub l1_assoc: Vec<u32>,
    /// Scheduler policies.
    pub sched: Vec<SchedAxis>,
    /// Clustering degrees.
    pub agents: Vec<AgentsAxis>,
}

impl SweepSpec {
    /// The built-in reduced grid CI smokes: Fermi, two apps, 3 × 2
    /// geometries, two schedulers, baseline + opt clustering = 48 points.
    pub fn reduced() -> SweepSpec {
        SweepSpec {
            arch: "GTX570".to_string(),
            apps: vec!["NW".to_string(), "BS".to_string()],
            l1_size_kb: vec![16, 32, 48],
            l1_assoc: vec![2, 4],
            sched: vec![SchedAxis::Strict, SchedAxis::Hardware],
            agents: vec![AgentsAxis::Baseline, AgentsAxis::Opt],
        }
    }

    /// Parses a `key = v1, v2, ...` config file. Blank lines and `#`
    /// comments are ignored; every key is required exactly once.
    ///
    /// ```text
    /// arch       = GTX570
    /// apps       = NW, BS, HS
    /// l1_size_kb = 16, 32, 48
    /// l1_assoc   = 2, 4
    /// sched      = strict, hw
    /// agents     = 0, opt
    /// ```
    ///
    /// # Errors
    ///
    /// Malformed lines, unknown keys, duplicate or missing keys.
    pub fn parse(text: &str) -> Result<SweepSpec, ClusterError> {
        let mut arch: Option<String> = None;
        let mut apps: Option<Vec<String>> = None;
        let mut sizes: Option<Vec<u32>> = None;
        let mut assocs: Option<Vec<u32>> = None;
        let mut scheds: Option<Vec<SchedAxis>> = None;
        let mut agents: Option<Vec<AgentsAxis>> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            let (key, value) = line.split_once('=').ok_or_else(|| {
                ClusterError::harness(format!("line {lineno}: expected `key = values`"))
            })?;
            let values: Vec<&str> = value.split(',').map(str::trim).collect();
            if values.iter().any(|v| v.is_empty()) {
                return Err(ClusterError::harness(format!(
                    "line {lineno}: empty value in list"
                )));
            }
            fn set<T>(
                slot: &mut Option<T>,
                parsed: T,
                key: &str,
                lineno: usize,
            ) -> Result<(), ClusterError> {
                if slot.is_some() {
                    return Err(ClusterError::harness(format!(
                        "line {lineno}: duplicate key {key:?}"
                    )));
                }
                *slot = Some(parsed);
                Ok(())
            }
            let numbers = |what: &str| {
                values
                    .iter()
                    .map(|v| {
                        v.parse::<u32>().map_err(|e| {
                            ClusterError::harness(format!("line {lineno}: {what} {v:?}: {e}"))
                        })
                    })
                    .collect::<Result<Vec<u32>, _>>()
            };
            match key.trim() {
                "arch" => set(&mut arch, value.trim().to_string(), "arch", lineno)?,
                "apps" => set(
                    &mut apps,
                    values.iter().map(|s| s.to_string()).collect(),
                    "apps",
                    lineno,
                )?,
                "l1_size_kb" => set(&mut sizes, numbers("l1_size_kb")?, "l1_size_kb", lineno)?,
                "l1_assoc" => set(&mut assocs, numbers("l1_assoc")?, "l1_assoc", lineno)?,
                "sched" => set(
                    &mut scheds,
                    values
                        .iter()
                        .map(|s| SchedAxis::parse(s))
                        .collect::<Result<Vec<_>, _>>()?,
                    "sched",
                    lineno,
                )?,
                "agents" => set(
                    &mut agents,
                    values
                        .iter()
                        .map(|s| AgentsAxis::parse(s))
                        .collect::<Result<Vec<_>, _>>()?,
                    "agents",
                    lineno,
                )?,
                other => {
                    return Err(ClusterError::harness(format!(
                        "line {lineno}: unknown key {other:?}"
                    )))
                }
            }
        }
        let require = |name: &str| ClusterError::harness(format!("missing key {name:?}"));
        Ok(SweepSpec {
            arch: arch.ok_or_else(|| require("arch"))?,
            apps: apps.ok_or_else(|| require("apps"))?,
            l1_size_kb: sizes.ok_or_else(|| require("l1_size_kb"))?,
            l1_assoc: assocs.ok_or_else(|| require("l1_assoc"))?,
            sched: scheds.ok_or_else(|| require("sched"))?,
            agents: agents.ok_or_else(|| require("agents"))?,
        })
    }

    /// Total grid size.
    pub fn num_points(&self) -> usize {
        self.apps.len()
            * self.l1_size_kb.len()
            * self.l1_assoc.len()
            * self.sched.len()
            * self.agents.len()
    }

    /// Resolves the preset by (case-insensitive) name.
    fn base_config(&self) -> Result<GpuConfig, ClusterError> {
        gpu_sim::arch::all_presets()
            .into_iter()
            .find(|c| c.name.eq_ignore_ascii_case(&self.arch))
            .ok_or_else(|| ClusterError::harness(format!("unknown arch preset {:?}", self.arch)))
    }
}

/// The simulated metrics of one point (identical whether the point was
/// simulated or copied from its equivalence-class representative).
#[derive(Debug, Clone, PartialEq)]
pub struct PointMetrics {
    /// Elapsed kernel cycles.
    pub cycles: u64,
    /// Total L2 transactions.
    pub l2_txns: u64,
    /// Measured L1 read hit rate.
    pub l1_hit_rate: f64,
    /// Achieved occupancy.
    pub occupancy: f64,
}

impl PointMetrics {
    fn of(stats: &RunStats) -> PointMetrics {
        PointMetrics {
            cycles: stats.cycles,
            l2_txns: stats.l2_transactions(),
            l1_hit_rate: stats.l1.read_hit_rate(),
            occupancy: stats.achieved_occupancy,
        }
    }

    /// Pareto dominance on the minimized objectives `(cycles, l2_txns)`.
    pub fn dominates(&self, other: &PointMetrics) -> bool {
        self.cycles <= other.cycles
            && self.l2_txns <= other.l2_txns
            && (self.cycles < other.cycles || self.l2_txns < other.l2_txns)
    }
}

/// One evaluated sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// App abbreviation.
    pub app: String,
    /// L1 capacity in KiB.
    pub l1_size_kb: u32,
    /// L1 way count.
    pub l1_assoc: u32,
    /// Scheduler label.
    pub sched: &'static str,
    /// Agents-axis label (`"0"`, `"opt"`, or a number).
    pub agents: String,
    /// The resolved request label (`"BSL"` or `"TOT{n}"`).
    pub request: String,
    /// Static hit-rate interval at this geometry.
    pub model_lo: f64,
    /// Static hit-rate interval at this geometry.
    pub model_hi: f64,
    /// Whether the metrics were copied from the class representative
    /// instead of simulated.
    pub pruned: bool,
    /// Simulated (or copied) metrics.
    pub metrics: PointMetrics,
}

/// Aggregate sweep outcome.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Every grid point, in deterministic enumeration order.
    pub points: Vec<SweepPoint>,
    /// Points actually simulated.
    pub simulated: u64,
    /// Points whose metrics were copied from a class representative.
    pub pruned: u64,
}

impl SweepOutcome {
    /// Fraction of points not simulated.
    pub fn prune_rate(&self) -> f64 {
        let total = self.simulated + self.pruned;
        if total > 0 {
            self.pruned as f64 / total as f64
        } else {
            0.0
        }
    }

    /// Per-app Pareto fronts over `(cycles, l2_txns)`, apps in spec
    /// order, each front sorted by ascending cycles then configuration
    /// labels — fully deterministic, so two runs (pruned or not) of the
    /// same grid produce byte-identical front JSON.
    pub fn fronts(&self) -> Vec<(String, Vec<&SweepPoint>)> {
        let mut apps: Vec<String> = Vec::new();
        for p in &self.points {
            if !apps.contains(&p.app) {
                apps.push(p.app.clone());
            }
        }
        apps.into_iter()
            .map(|app| {
                let candidates: Vec<&SweepPoint> =
                    self.points.iter().filter(|p| p.app == app).collect();
                let mut front: Vec<&SweepPoint> = candidates
                    .iter()
                    .filter(|p| !candidates.iter().any(|q| q.metrics.dominates(&p.metrics)))
                    .copied()
                    .collect();
                front.sort_by(|a, b| {
                    (
                        a.metrics.cycles,
                        a.metrics.l2_txns,
                        a.l1_size_kb,
                        a.l1_assoc,
                    )
                        .cmp(&(
                            b.metrics.cycles,
                            b.metrics.l2_txns,
                            b.l1_size_kb,
                            b.l1_assoc,
                        ))
                        .then_with(|| a.sched.cmp(b.sched))
                        .then_with(|| a.agents.cmp(&b.agents))
                });
                (app, front)
            })
            .collect()
    }
}

/// Builds the concrete [`GpuConfig`] of one geometry point.
///
/// # Errors
///
/// Propagates `GpuConfig::validate` for inconsistent geometry requests
/// (capacity not divisible into whole sets, etc.).
pub fn geometry_config(
    base: &GpuConfig,
    size_kb: u32,
    assoc: u32,
) -> Result<GpuConfig, ClusterError> {
    let mut cfg = base.clone();
    cfg.l1.size_bytes = size_kb * 1024;
    cfg.l1.associativity = assoc;
    cfg.name = format!("{}-L1-{size_kb}KB-{assoc}w", base.name);
    cfg.validate()
        .map_err(|e| ClusterError::harness(format!("geometry {size_kb}KB/{assoc}-way: {e}")))?;
    Ok(cfg)
}

/// Whether the cost model proves L1 `(size, associativity)` to be dead
/// axes for this access stream: write-evict L1 and either no cacheable
/// reads at all or a fully cold read stream.
pub fn geometry_is_dead_axis(summary: &AccessSummary, cfg: &GpuConfig) -> bool {
    cfg.l1.write_policy == WritePolicy::WriteEvict
        && (summary.reads() == 0 || summary.all_reads_cold(cfg.l1.write_policy))
}

/// Runs the sweep. When `prune` is set, geometry equivalence classes
/// proven dead by the cost model simulate only one representative.
///
/// # Errors
///
/// Propagates preset/geometry/transform/simulation failures.
pub fn run_sweep(spec: &SweepSpec, prune: bool) -> Result<SweepOutcome, ClusterError> {
    let base = spec.base_config()?;
    let mut points: Vec<SweepPoint> = Vec::with_capacity(spec.num_points());
    let mut simulated = 0u64;
    let mut pruned = 0u64;
    let obs = cta_obs::maybe_global();
    for app in &spec.apps {
        // One plan per geometry: the plan owns the configured GPU and
        // the program cache shared by its variants.
        let mut plans: Vec<(u32, u32, AppPlan)> = Vec::new();
        for &size_kb in &spec.l1_size_kb {
            for &assoc in &spec.l1_assoc {
                let cfg = geometry_config(&base, size_kb, assoc)?;
                let workload = gpu_kernels::suite::by_abbr(app, cfg.arch)
                    .ok_or_else(|| ClusterError::harness(format!("{app} not in suite")))?;
                plans.push((size_kb, assoc, AppPlan::with_config(cfg, workload)));
            }
        }
        for agents in &spec.agents {
            // The variant's access stream is identical across geometries
            // (same line size, same clamp — capacity never feeds the
            // transform), so one abstract interpretation serves the
            // whole class. The per-request label check below guards the
            // clamp assumption.
            let (_, _, first_plan) = &plans[0];
            let class_req = agents.request(first_plan);
            let summary = first_plan.with_variant_kernel(class_req, |k| {
                AccessSummary::collect_on(k, &first_plan.cfg)
            })?;
            let class_dead = geometry_is_dead_axis(&summary, &first_plan.cfg);
            for sched in &spec.sched {
                let mut representative: Option<PointMetrics> = None;
                for (size_kb, assoc, plan) in &plans {
                    let req = agents.request(plan);
                    let same_class = req.label() == class_req.label();
                    let iv = summary.hit_interval(&plan.cfg);
                    let (metrics, was_pruned) = match &representative {
                        Some(rep) if prune && class_dead && same_class => {
                            pruned += 1;
                            (rep.clone(), true)
                        }
                        _ => {
                            let (stats, _) = plan.run_metered_sched(req, sched.instantiate())?;
                            simulated += 1;
                            let m = PointMetrics::of(&stats);
                            if class_dead && same_class {
                                representative = Some(m.clone());
                            }
                            (m, false)
                        }
                    };
                    if let Some(obs) = &obs {
                        let scope = format!(
                            "{app}/L1-{size_kb}KB-{assoc}w/{}/{}",
                            sched.label(),
                            agents.label()
                        );
                        obs.counter("dse/cycles", &scope, metrics.cycles);
                        obs.counter("dse/l2_txns", &scope, metrics.l2_txns);
                        obs.counter("dse/pruned", &scope, was_pruned as u64);
                    }
                    points.push(SweepPoint {
                        app: app.clone(),
                        l1_size_kb: *size_kb,
                        l1_assoc: *assoc,
                        sched: sched.label(),
                        agents: agents.label(),
                        request: req.label(),
                        model_lo: iv.lo,
                        model_hi: iv.hi,
                        pruned: was_pruned,
                        metrics,
                    });
                }
            }
        }
    }
    Ok(SweepOutcome {
        points,
        simulated,
        pruned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_round_trips() {
        let spec = SweepSpec::parse(
            "# comment\n\
             arch = gtx570\n\
             apps = NW, BS # trailing comment\n\
             l1_size_kb = 16, 48\n\
             l1_assoc = 4\n\
             sched = strict, hw, rand\n\
             agents = 0, opt, 3\n",
        )
        .expect("parse");
        assert_eq!(spec.apps, vec!["NW", "BS"]);
        assert_eq!(spec.l1_size_kb, vec![16, 48]);
        assert_eq!(spec.sched.len(), 3);
        assert_eq!(
            spec.agents,
            vec![AgentsAxis::Baseline, AgentsAxis::Opt, AgentsAxis::Fixed(3)]
        );
        // 2 apps x 2 sizes x 1 assoc x 3 scheds x 3 agent settings.
        assert_eq!(spec.num_points(), 36);
        spec.base_config().expect("preset resolves");
    }

    #[test]
    fn spec_rejects_malformed_input() {
        assert!(SweepSpec::parse("arch = gtx570").is_err(), "missing keys");
        assert!(SweepSpec::parse("bogus = 1").is_err(), "unknown key");
        assert!(
            SweepSpec::parse("arch = a\narch = b").is_err(),
            "duplicate key"
        );
        assert!(SweepSpec::parse("apps = NW,, BS").is_err(), "empty value");
        assert!(SweepSpec::parse("sched = quantum").is_err(), "bad sched");
    }

    #[test]
    fn geometry_config_rebuilds_and_validates() {
        let base = gpu_sim::arch::gtx570();
        let cfg = geometry_config(&base, 32, 4).expect("valid geometry");
        assert_eq!(cfg.l1.size_bytes, 32 * 1024);
        assert_eq!(cfg.l1.associativity, 4);
        assert_eq!(cfg.l1.num_sets(), 64);
        // 16 KiB does not divide into whole 128B x 3-way sets.
        assert!(geometry_config(&base, 16, 3).is_err());
    }

    #[test]
    fn pareto_dominance() {
        let a = PointMetrics {
            cycles: 100,
            l2_txns: 50,
            l1_hit_rate: 0.0,
            occupancy: 0.0,
        };
        let b = PointMetrics {
            cycles: 120,
            l2_txns: 50,
            l1_hit_rate: 0.0,
            occupancy: 0.0,
        };
        let c = PointMetrics {
            cycles: 90,
            l2_txns: 60,
            l1_hit_rate: 0.0,
            occupancy: 0.0,
        };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c) && !c.dominates(&a), "incomparable");
        assert!(!a.dominates(&a), "never self-dominating");
    }

    #[test]
    fn pruned_and_unpruned_sweeps_agree_exactly() {
        // A deliberately tiny grid exercising both a prunable app and
        // both schedulers; the full reduced grid runs in CI.
        let spec = SweepSpec {
            arch: "GTX570".to_string(),
            apps: vec!["BS".to_string()],
            l1_size_kb: vec![16, 48],
            l1_assoc: vec![2],
            sched: vec![SchedAxis::Strict],
            agents: vec![AgentsAxis::Baseline],
        };
        let full = run_sweep(&spec, false).expect("unpruned");
        let fast = run_sweep(&spec, true).expect("pruned");
        assert_eq!(full.points.len(), fast.points.len());
        for (a, b) in full.points.iter().zip(&fast.points) {
            assert_eq!(a.metrics, b.metrics, "{}: metrics must match", a.app);
            assert_eq!(a.request, b.request);
        }
        assert_eq!(full.pruned, 0);
    }
}
