//! NBO — all-pairs gravitational n-body (CUDA SDK `nbody`).
//!
//! Bodies are stored as 16-byte structs and distributed *cyclically*
//! across the CTAs of a grid row: lane `t` of CTA `(bx, by)` owns body
//! `(t * gridDim.x + bx)` of group `by`. Adjacent-`bx` CTAs therefore
//! interleave within the same 128-byte lines — word-disjoint,
//! line-shared: cache-line-related locality clustered by Y-partitioning
//! (row-major indexing keeps same-`by` CTAs together).

use crate::common::array_base;
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, Dim3, KernelSpec, LaunchConfig, MemAccess, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "NBO",
    full_name: "nbody",
    description: "All-pairs gravitational n-body simulation",
    category: PaperCategory::CacheLine,
    warps_per_cta: 8,
    partition: PartitionHint::Y,
    opt_agents: [2, 4, 5, 2],
    regs: [24, 38, 35, 46],
    smem: 0,
    source: "CUDA SDK",
};

const TAG_POS: u16 = 0;
const TAG_OUT: u16 = 2;

/// Words per body record: float4 position + float4 velocity, 32 bytes.
/// One Maxwell/Pascal L1 line holds exactly one record (no cross-CTA
/// sharing); one Fermi/Kepler 128B line holds four cyclically-assigned
/// records (four CTAs share it).
const BODY_WORDS: u64 = 8;

/// The n-body workload model.
#[derive(Debug, Clone)]
pub struct Nbody {
    /// CTAs per body group (cyclic distribution width).
    pub grid_x: u32,
    /// Body groups.
    pub grid_y: u32,
    /// Interaction tiles each CTA processes.
    pub tiles: u32,
    /// Registers per thread.
    pub regs: u32,
}

impl Nbody {
    /// Default evaluation-scale instance for `arch`.
    pub fn for_arch(arch: ArchGen) -> Self {
        Nbody {
            grid_x: 8,
            grid_y: 40,
            tiles: 4,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance.
    pub fn new(grid_x: u32, grid_y: u32, tiles: u32) -> Self {
        Nbody {
            grid_x,
            grid_y,
            tiles,
            regs: INFO.regs[0],
        }
    }

    /// Word index of the position struct of lane `t` in CTA `(bx, by)`
    /// for warp `w`: cyclic within the group row.
    fn body_word(&self, bx: u64, by: u64, warp: u64, lane: u64) -> u64 {
        let bodies_per_group = self.grid_x as u64 * 256;
        let slot = (warp * 32 + lane) * self.grid_x as u64 + bx;
        (by * bodies_per_group + slot) * BODY_WORDS
    }
}

impl KernelSpec for Nbody {
    fn name(&self) -> String {
        format!("NBO({}x{},t{})", self.grid_x, self.grid_y, self.tiles)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::plane(self.grid_x, self.grid_y), 256u32)
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let (bx, by, _) = self.launch().grid.coords_row_major(ctx.cta);
        let mut prog = Program::new();
        // Gather this warp's cyclically-assigned body records, one
        // record-word column at a time.
        for word in 0..BODY_WORDS {
            let addrs: Vec<u64> = (0..32)
                .map(|t| {
                    array_base(TAG_POS)
                        + (self.body_word(bx as u64, by as u64, warp as u64, t) + word) * 4
                })
                .collect();
            prog.push(Op::Load(MemAccess::gather(TAG_POS, addrs, 4)));
        }
        // Interaction tiles: the per-tile reference bodies are staged via
        // shared memory in the real kernel; globally this is compute.
        for _ in 0..self.tiles {
            prog.push(Op::Compute(30));
            prog.push(Op::Barrier);
        }
        // Scatter updated positions back.
        let addrs: Vec<u64> = (0..32)
            .map(|t| array_base(TAG_OUT) + self.body_word(bx as u64, by as u64, warp as u64, t) * 4)
            .collect();
        prog.push(Op::Store(MemAccess::gather(TAG_OUT, addrs, 4)));
        prog
    }
}

impl Workload for Nbody {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::coalesce_lines;

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        }
    }

    fn pos_lines(n: &Nbody, cta: u64, line: u32) -> std::collections::BTreeSet<u64> {
        (0..8)
            .flat_map(|w| n.warp_program(&ctx(cta), w))
            .filter_map(|op| op.access().cloned())
            .filter(|a| a.tag == TAG_POS)
            .flat_map(|a| coalesce_lines(&a, line))
            .collect()
    }

    fn pos_words(n: &Nbody, cta: u64) -> std::collections::BTreeSet<u64> {
        (0..8)
            .flat_map(|w| n.warp_program(&ctx(cta), w))
            .filter_map(|op| op.access().cloned())
            .filter(|a| a.tag == TAG_POS)
            .flat_map(|a| a.addrs)
            .collect()
    }

    #[test]
    fn adjacent_bx_interleave_on_128b_lines() {
        let n = Nbody::new(4, 2, 1);
        // CTAs 0 and 1 share by=0 (row-major).
        assert_eq!(pos_words(&n, 0).intersection(&pos_words(&n, 1)).count(), 0);
        let shared = pos_lines(&n, 0, 128)
            .intersection(&pos_lines(&n, 1, 128))
            .count();
        assert!(shared > 0, "128B lines interleave cyclic bodies");
    }

    #[test]
    fn no_sharing_on_32b_lines() {
        // A 32B line holds exactly one 8-word body record, owned by one
        // CTA; a 128B line spans four records = four adjacent-bx CTAs.
        let n = Nbody::new(8, 2, 1);
        let l32: usize = (0..7)
            .map(|c| {
                pos_lines(&n, c, 32)
                    .intersection(&pos_lines(&n, c + 1, 32))
                    .count()
            })
            .sum();
        let l128: usize = (0..7)
            .map(|c| {
                pos_lines(&n, c, 128)
                    .intersection(&pos_lines(&n, c + 1, 128))
                    .count()
            })
            .sum();
        assert_eq!(l32, 0, "32B lines are CTA-private");
        assert!(l128 > 0, "128B lines are shared");
    }

    #[test]
    fn groups_are_disjoint() {
        let n = Nbody::new(2, 2, 1);
        // CTA 0 (by=0) and CTA 2 (by=1) touch different body groups.
        assert_eq!(
            pos_lines(&n, 0, 128)
                .intersection(&pos_lines(&n, 2, 128))
                .count(),
            0
        );
    }
}
