//! Pass family 3: optimization-plan audit.
//!
//! Cross-checks a [`Plan`] (the Figure 11 framework's output) against the
//! statically re-derived locality profile: the plan must not exploit
//! unexploitable locality, must not bypass reused arrays, must not
//! prefetch where clustering already wins, and must keep its throttle
//! inside the occupancy bound.

use crate::diag::{
    Report, PLAN_BYPASS_REUSED_TAG, PLAN_EXPLOITS_UNEXPLOITABLE, PLAN_PREFETCH_ON_EXPLOITABLE,
    STATIC_CATEGORY_MISMATCH, THROTTLE_CLAMPED, THROTTLE_EXCEEDS_OCCUPANCY,
};
use crate::profile::StaticProfile;
use cta_clustering::{clamp_active_agents, Plan};

/// A bypassed tag with at least this static word-reuse rate is flagged.
const BYPASS_TAG_REUSE_MAX: f64 = 0.05;

/// Audits `plan` against the static `profile` and the occupancy-derived
/// `max_agents`, emitting CL026/CL027 and CL030–CL033.
pub fn audit(
    plan: &Plan,
    profile: &StaticProfile,
    max_agents: u32,
    subject: &str,
    report: &mut Report,
) {
    report.note_subject();

    // CL030: the category the plan is predicated on must match what the
    // address streams say. Warn-level: threshold effects on borderline
    // kernels are expected, a disagreement is a review prompt.
    let static_cat = profile.category;
    if static_cat != plan.category {
        report.emit(
            &STATIC_CATEGORY_MISMATCH,
            subject,
            format!(
                "plan says {}, static address streams classify as {static_cat}",
                plan.category
            ),
        );
    }

    // CL031: an exploit plan over a category the paper calls
    // unexploitable is self-contradictory (Figure 5's decision table).
    if plan.exploit_locality && !plan.category.exploitable() {
        report.emit(
            &PLAN_EXPLOITS_UNEXPLOITABLE,
            subject,
            format!(
                "plan exploits locality but its category is {}",
                plan.category
            ),
        );
    }

    // CL032: bypassing an array whose accesses carry word reuse defeats
    // the bypass's purpose — the L1 was serving those hits.
    let mut reused: Vec<String> = Vec::new();
    for &tag in &plan.bypass {
        let s = profile.tag_summary(tag);
        if s.reuse_rate() >= BYPASS_TAG_REUSE_MAX {
            reused.push(format!(
                "tag {tag}: {:.0}% word reuse over {} accesses",
                s.reuse_rate() * 100.0,
                s.accesses
            ));
        }
    }
    if !reused.is_empty() {
        report.emit(&PLAN_BYPASS_REUSED_TAG, subject, reused.join("; "));
    }

    // CL033: prefetching exists to salvage unexploitable kernels (§4.3);
    // on an exploit plan it competes with the locality it should yield to.
    if plan.prefetch > 0 && plan.exploit_locality {
        report.emit(
            &PLAN_PREFETCH_ON_EXPLOITABLE,
            subject,
            format!(
                "prefetch depth {} on an exploit plan (category {})",
                plan.prefetch, plan.category
            ),
        );
    }

    // CL026/CL027: throttle vs occupancy. An out-of-range request is
    // repaired at apply time by `clamp_active_agents`; the deny lint
    // fires only if the repair would *not* restore validity (impossible
    // by construction — kept as the analyzer's own consistency check),
    // the warn lint whenever the repair changes the request.
    if let Some(active) = plan.active_agents {
        let clamped = clamp_active_agents(active, max_agents);
        if clamped == 0 || clamped > max_agents {
            report.emit(
                &THROTTLE_EXCEEDS_OCCUPANCY,
                subject,
                format!(
                    "ACTIVE_AGENTS = {active} not repairable against MAX_AGENTS = {max_agents}"
                ),
            );
        } else if clamped != active {
            report.emit(
                &THROTTLE_CLAMPED,
                subject,
                format!("requested ACTIVE_AGENTS = {active}, runtime clamps to {clamped} (MAX_AGENTS = {max_agents})"),
            );
        }
    }

    // Note: a bypass list on an unexploitable plan is deliberately not a
    // lint of its own — streaming kernels have nothing to protect in L1,
    // and the other unexploitable categories are already covered by
    // CL032 through their per-tag reuse rates.
}

#[cfg(test)]
mod tests {
    use super::*;
    use cta_clustering::Axis;
    use gpu_sim::{arch, CtaContext, Dim3, KernelSpec, LaunchConfig, MemAccess, Op, Program};
    use locality::Category;

    /// CTAs re-read a shared table (tag 0) and stream tag 1.
    #[derive(Debug, Clone)]
    struct Shared;

    impl KernelSpec for Shared {
        fn name(&self) -> String {
            "shared".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::linear(16), 32u32)
        }
        fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
            vec![
                Op::Load(MemAccess::coalesced(0, 0, 32, 4)),
                Op::Load(MemAccess::coalesced(1, (1 << 30) + ctx.cta * 128, 32, 4)),
            ]
        }
    }

    fn profile() -> StaticProfile {
        StaticProfile::collect(&Shared, &arch::gtx570())
    }

    fn exploit_plan() -> Plan {
        Plan {
            category: Category::Algorithm,
            axis: Axis::Y,
            exploit_locality: true,
            active_agents: Some(4),
            bypass: vec![1],
            prefetch: 0,
        }
    }

    #[test]
    fn consistent_plan_is_clean() {
        let p = profile();
        assert_eq!(p.category, Category::Algorithm);
        let mut r = Report::new();
        audit(&exploit_plan(), &p, 8, "t", &mut r);
        assert_eq!(r.deny_count(), 0, "{}", r.render_human());
        assert_eq!(r.warn_count(), 0);
    }

    #[test]
    fn category_mismatch_fires_cl030() {
        let mut plan = exploit_plan();
        plan.category = Category::CacheLine;
        let mut r = Report::new();
        audit(&plan, &profile(), 8, "t", &mut r);
        assert!(r.has(&STATIC_CATEGORY_MISMATCH));
        assert_eq!(r.deny_count(), 0, "mismatch is warn-level");
    }

    #[test]
    fn exploiting_streaming_fires_cl031() {
        let mut plan = exploit_plan();
        plan.category = Category::Streaming;
        let mut r = Report::new();
        audit(&plan, &profile(), 8, "t", &mut r);
        assert!(r.has(&PLAN_EXPLOITS_UNEXPLOITABLE));
    }

    #[test]
    fn bypassing_reused_tag_fires_cl032() {
        let mut plan = exploit_plan();
        plan.bypass = vec![0]; // the shared table
        let mut r = Report::new();
        audit(&plan, &profile(), 8, "t", &mut r);
        assert!(r.has(&PLAN_BYPASS_REUSED_TAG), "{}", r.render_human());
    }

    #[test]
    fn prefetch_on_exploit_plan_fires_cl033() {
        let mut plan = exploit_plan();
        plan.prefetch = 2;
        let mut r = Report::new();
        audit(&plan, &profile(), 8, "t", &mut r);
        assert!(r.has(&PLAN_PREFETCH_ON_EXPLOITABLE));
    }

    #[test]
    fn clamped_throttle_fires_cl027_not_cl026() {
        let mut plan = exploit_plan();
        plan.active_agents = Some(100);
        let mut r = Report::new();
        audit(&plan, &profile(), 8, "t", &mut r);
        assert!(r.has(&THROTTLE_CLAMPED));
        assert!(!r.has(&THROTTLE_EXCEEDS_OCCUPANCY));
        assert_eq!(r.deny_count(), 0, "a repairable request is warn-level");
    }
}
