//! Plain-text table formatting for the figure/table reproductions.

/// A fixed-width text table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a ratio as the paper does its bar annotations (`1.46X`).
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.0}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["app", "speedup"]);
        t.row(vec!["MM".into(), "1.25x".into()]);
        t.row(vec!["KMEANS".into(), "0.99x".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("app"));
        assert!(lines[2].starts_with("MM"));
        assert!(lines[3].starts_with("KMEANS"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new(&["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(1.456), "1.46x");
        assert_eq!(pct(0.55), "55%");
    }
}
