//! The ten-plus additional applications that appear only in the paper's
//! Figure 3 reuse quantification (COR, LUD, FWT, PFD, STD, MRI, SRD, LIB,
//! SR2, NE, SP, BNO, SLA, FTD, LPS, GES, HRT).
//!
//! These are modelled as parameterizations of [`ExtraApp`], a composable
//! pattern kernel mixing the five locality sources: a shared table
//! (algorithm), row panels (cache-line), private streams (streaming),
//! seeded gathers (data) and shifted read/write strips (write-related).
//! Each preset's mix is chosen to match the app's published access
//! structure; only their Figure 3 reuse shares are evaluated, so the mix
//! — not cycle-accurate structure — is what matters.

use crate::common::{array_base, gather_words, mix_range, panel_reads, read_words, write_words};
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{CtaContext, Dim3, KernelSpec, LaunchConfig, Op, Program};

const TAG_TABLE: u16 = 0;
const TAG_STREAM: u16 = 1;
const TAG_PANEL: u16 = 2;
const TAG_IRREG: u16 = 3;
const TAG_OUT: u16 = 4;

/// Which CTAs share the kernel's table data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingAxis {
    /// Table indexed by `blockIdx.x`: shared down grid columns.
    X,
    /// Table indexed by `blockIdx.y`: shared along grid rows.
    Y,
    /// One global table shared by every CTA.
    All,
}

/// A composable pattern kernel standing in for a named benchmark.
#[derive(Debug, Clone)]
pub struct ExtraApp {
    info: WorkloadInfo,
    grid: Dim3,
    threads: u32,
    /// Words of axis-shared table read per warp (0 = none).
    shared_words: u64,
    axis: SharingAxis,
    /// Private streaming words per warp.
    stream_words: u64,
    /// Cache-line panel words per thread (0 = none).
    panel_words: u64,
    /// Irregular gather ops per warp (0 = none).
    gathers: u32,
    /// NW-style shifted read/write strip.
    write_shift: bool,
    seed: u64,
}

impl ExtraApp {
    /// Table 2-style metadata for this app.
    pub fn workload_info(&self) -> WorkloadInfo {
        self.info
    }
}

impl KernelSpec for ExtraApp {
    fn name(&self) -> String {
        format!("{}({}x{})", self.info.abbr, self.grid.x, self.grid.y)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(self.grid, self.threads)
            .with_regs(self.info.regs[0])
            .with_smem(self.info.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let (bx, by, _) = self.grid.coords_row_major(ctx.cta);
        let mut prog = Program::new();
        // Axis-shared table.
        if self.shared_words > 0 {
            let index = match self.axis {
                SharingAxis::X => bx as u64,
                SharingAxis::Y => by as u64,
                SharingAxis::All => 0,
            };
            let base = index * self.shared_words;
            let mut w = 0;
            while w < self.shared_words {
                let lanes = (self.shared_words - w).min(32) as u32;
                prog.push(read_words(TAG_TABLE, base + w, lanes));
                w += 32;
            }
        }
        // Private stream.
        let warps = self.threads.div_ceil(32) as u64;
        let mut w = 0;
        while w < self.stream_words {
            let lanes = (self.stream_words - w).min(32) as u32;
            let word = (ctx.cta * warps + warp as u64) * self.stream_words + w;
            prog.push(read_words(TAG_STREAM, word, lanes));
            w += 32;
        }
        // Cache-line panel.
        if self.panel_words > 0 {
            let row0 = bx as u64 * self.threads as u64 + warp as u64 * 32;
            let row_words = self.grid.y as u64 * self.panel_words;
            let col0 = by as u64 * self.panel_words;
            prog.extend(panel_reads(
                TAG_PANEL,
                row0,
                row_words,
                col0,
                self.panel_words,
                32,
            ));
        }
        // Irregular gathers.
        for g in 0..self.gathers as u64 {
            let addrs: Vec<u64> = (0..32u64)
                .map(|lane| {
                    mix_range(
                        self.seed ^ (ctx.cta * 131 + warp as u64 * 37 + g * 7 + lane),
                        1 << 14,
                    )
                })
                .collect();
            prog.push(gather_words(TAG_IRREG, &addrs));
        }
        prog.push(Op::Compute(10));
        // Output: shifted strip (write-related) or private strip.
        let strip = ctx.cta * warps * 32 + warp as u64 * 32;
        if self.write_shift {
            prog.push(Op::Load(gpu_sim::MemAccess::coalesced(
                TAG_OUT,
                array_base(TAG_OUT) + strip.saturating_sub(2) * 4,
                32,
                4,
            )));
            prog.push(write_words(TAG_OUT, strip, 32));
        } else {
            prog.push(write_words(TAG_OUT, strip, 32));
        }
        prog
    }
}

impl Workload for ExtraApp {
    fn info(&self) -> WorkloadInfo {
        self.info
    }
}

macro_rules! extra {
    ($fn_name:ident, $abbr:literal, $full:literal, $desc:literal, $cat:ident, $wp:literal,
     $part:ident, $source:literal, grid: ($gx:literal, $gy:literal), threads: $threads:literal,
     shared: $shared:literal, axis: $axis:ident, stream: $stream:literal,
     panel: $panel:literal, gathers: $gathers:literal, write_shift: $ws:literal) => {
        /// Figure 3 workload preset (see module docs).
        pub fn $fn_name() -> ExtraApp {
            ExtraApp {
                info: WorkloadInfo {
                    abbr: $abbr,
                    full_name: $full,
                    description: $desc,
                    category: PaperCategory::$cat,
                    warps_per_cta: $wp,
                    partition: PartitionHint::$part,
                    opt_agents: [8, 16, 32, 32],
                    regs: [20, 24, 24, 26],
                    smem: 0,
                    source: $source,
                },
                grid: Dim3::plane($gx, $gy),
                threads: $threads,
                shared_words: $shared,
                axis: SharingAxis::$axis,
                stream_words: $stream,
                panel_words: $panel,
                gathers: $gathers,
                write_shift: $ws,
                seed: 0x5EED ^ ($abbr.len() as u64) << 8,
            }
        }
    };
}

extra!(cor, "COR", "correlation", "Correlation matrix computation", Algorithm, 8,
    X, "PolyBench", grid: (8, 32), threads: 256, shared: 128, axis: X, stream: 64,
    panel: 0, gathers: 0, write_shift: false);
extra!(lud, "LUD", "lud", "LU matrix decomposition", Algorithm, 4,
    X, "Rodinia", grid: (16, 16), threads: 128, shared: 96, axis: X, stream: 32,
    panel: 0, gathers: 0, write_shift: false);
extra!(fwt, "FWT", "fastWalshTransform", "Fast Walsh-Hadamard transform", Algorithm, 8,
    Y, "CUDA SDK", grid: (16, 16), threads: 256, shared: 64, axis: Y, stream: 96,
    panel: 0, gathers: 0, write_shift: false);
extra!(pfd, "PFD", "pathfinder", "Dynamic-programming grid path search", Algorithm, 8,
    X, "Rodinia", grid: (32, 8), threads: 256, shared: 96, axis: X, stream: 32,
    panel: 0, gathers: 0, write_shift: true);
extra!(std_2d, "STD", "stencil2d", "2D 9-point stencil", Algorithm, 8,
    Y, "Parboil", grid: (16, 16), threads: 256, shared: 160, axis: Y, stream: 32,
    panel: 0, gathers: 0, write_shift: false);
extra!(mri, "MRI", "mri-q", "MRI Q-matrix reconstruction", Algorithm, 8,
    X, "Parboil", grid: (24, 8), threads: 256, shared: 256, axis: All, stream: 64,
    panel: 0, gathers: 0, write_shift: false);
extra!(srd, "SRD", "srad", "Speckle-reducing anisotropic diffusion", Algorithm, 8,
    Y, "Rodinia", grid: (16, 16), threads: 256, shared: 128, axis: Y, stream: 64,
    panel: 0, gathers: 0, write_shift: false);
extra!(lib, "LIB", "libor", "LIBOR market-model Monte Carlo", Algorithm, 4,
    X, "CUDA SDK", grid: (32, 8), threads: 128, shared: 192, axis: All, stream: 96,
    panel: 0, gathers: 0, write_shift: false);
extra!(sr2, "SR2", "srad2", "SRAD second stage", CacheLine, 8,
    X, "Rodinia", grid: (8, 24), threads: 256, shared: 0, axis: X, stream: 32,
    panel: 8, gathers: 0, write_shift: false);
extra!(ne, "NE", "nearestNeighbor", "Nearest-neighbor search", Data, 8,
    X, "Rodinia", grid: (24, 8), threads: 256, shared: 0, axis: X, stream: 32,
    panel: 0, gathers: 6, write_shift: false);
extra!(sp, "SP", "scalarProd", "Batched scalar products", Streaming, 8,
    X, "CUDA SDK", grid: (32, 8), threads: 256, shared: 0, axis: X, stream: 160,
    panel: 0, gathers: 0, write_shift: false);
extra!(bno, "BNO", "binomialOptions", "Binomial option pricing", Algorithm, 8,
    X, "CUDA SDK", grid: (24, 8), threads: 256, shared: 96, axis: X, stream: 32,
    panel: 0, gathers: 0, write_shift: false);
extra!(sla, "SLA", "scanLargeArray", "Work-efficient prefix scan", Streaming, 8,
    X, "CUDA SDK", grid: (32, 8), threads: 256, shared: 0, axis: X, stream: 128,
    panel: 0, gathers: 0, write_shift: false);
extra!(ftd, "FTD", "fdtd2d", "2D finite-difference time domain", Algorithm, 8,
    Y, "PolyBench", grid: (16, 16), threads: 256, shared: 128, axis: Y, stream: 64,
    panel: 0, gathers: 0, write_shift: true);
extra!(lps, "LPS", "laplace3d", "3D Laplace solver", Algorithm, 8,
    Y, "GPGPU-Sim", grid: (16, 16), threads: 256, shared: 144, axis: Y, stream: 48,
    panel: 0, gathers: 0, write_shift: false);
extra!(ges, "GES", "gaussian", "Gaussian elimination", CacheLine, 8,
    X, "Rodinia", grid: (8, 24), threads: 256, shared: 32, axis: X, stream: 32,
    panel: 8, gathers: 0, write_shift: false);
extra!(hrt, "HRT", "heartwall", "Heart-wall motion tracking", Data, 8,
    X, "Rodinia", grid: (24, 8), threads: 256, shared: 32, axis: All, stream: 64,
    panel: 0, gathers: 8, write_shift: false);

/// All Figure 3 extra presets, in the paper's bar order.
pub fn all_extras() -> Vec<ExtraApp> {
    vec![
        cor(),
        lud(),
        fwt(),
        pfd(),
        std_2d(),
        mri(),
        srd(),
        lib(),
        sr2(),
        ne(),
        sp(),
        bno(),
        sla(),
        ftd(),
        lps(),
        ges(),
        hrt(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        }
    }

    #[test]
    fn all_extras_have_distinct_abbrs() {
        let extras = all_extras();
        let mut abbrs: Vec<_> = extras.iter().map(|e| e.info.abbr).collect();
        assert_eq!(abbrs.len(), 17);
        abbrs.sort_unstable();
        abbrs.dedup();
        assert_eq!(abbrs.len(), 17);
    }

    #[test]
    fn launches_validate_everywhere() {
        for e in all_extras() {
            e.launch()
                .validate()
                .unwrap_or_else(|err| panic!("{}: {err}", e.info.abbr));
        }
    }

    #[test]
    fn table_apps_share_along_declared_axis() {
        let c = cor(); // axis X, grid (8, 32)
        let table = |cta| {
            c.warp_program(&ctx(cta), 0)
                .iter()
                .filter_map(|op| op.access().cloned())
                .filter(|a| a.tag == TAG_TABLE)
                .flat_map(|a| a.addrs)
                .collect::<Vec<_>>()
        };
        // Same bx=1: ctas 1 and 9 (row-major, grid_x=8).
        assert_eq!(table(1), table(9));
        assert_ne!(table(1), table(2));
    }

    #[test]
    fn streaming_presets_have_no_table() {
        for app in [sp(), sla()] {
            let p = app.warp_program(&ctx(0), 0);
            assert!(p
                .iter()
                .all(|op| op.access().map(|a| a.tag != TAG_TABLE).unwrap_or(true)));
        }
    }

    #[test]
    fn gather_presets_are_deterministic() {
        let a = ne().warp_program(&ctx(3), 1);
        let b = ne().warp_program(&ctx(3), 1);
        assert_eq!(a, b);
    }
}
