//! Static cost summaries: the abstract interpretation behind the
//! analyzer's `CL2xx` performance lints and the `dse` pruning harness.
//!
//! [`AccessSummary::collect`] walks every warp program of a kernel once
//! (via [`gpu_sim::walk`], CTA-major order, no timing model) and folds
//! the demand-read line stream into an abstract state: per-line touch
//! counts, distinct-CTA counts, written flags, and an exact LRU
//! stack-distance histogram. From that single walk,
//! [`AccessSummary::hit_interval`] derives a **sound** L1 read hit-rate
//! interval `[lo, hi]` for any cache geometry — sound meaning the
//! interval contains the hit rate the event-driven simulator measures
//! for *every* scheduler policy and CTA placement the engine can
//! produce.
//!
//! # Why the bounds are sound
//!
//! The engine presents a load to L1 only when the L1 is enabled and the
//! op's cache policy is `CacheAll` or `PrefetchL1` (prefetches are
//! counted as ordinary L1 reads; only the returned latency differs).
//! Each presented load is split into line transactions by the same
//! [`gpu_sim::coalesce_lines_into`] the engine uses, so the transaction
//! count `T` is a property of the access multiset alone. For suite
//! kernels, programs are context-independent; for agent-transformed
//! kernels the walker's idealized-RR dispatch covers every `(sm, slot)`
//! worklist exactly once, so the multiset — and the grouping of touches
//! by executing CTA/agent — is placement-invariant.
//!
//! **Upper bound.** Caches start empty and only demand/prefetch reads
//! install lines (under write-evict, stores *invalidate*; under
//! write-back-allocate, stores install, so written lines are excluded).
//! The device-wide first read of each of the `U` qualifying lines can
//! therefore neither hit nor hit-reserve anywhere: `hits ≤ T − U`, i.e.
//! `hi = (T − U) / T`.
//!
//! **Lower bound.** A CTA is pinned to one SM and one sector array for
//! its whole life. Call a line *stable* under a geometry when (a) the
//! number of distinct install-capable lines mapping to its set — via the
//! same hashed [`AddrDec`] the hardware model indexes with, over the
//! per-sector sub-array — is at most the associativity, and (b) under
//! write-evict it is never stored to. Victim selection always prefers
//! invalid ways, so a set whose device-wide footprint fits its ways
//! never evicts; a stable line, once read by a CTA, stays resident in
//! that CTA's array. Every non-first read of a stable line by the same
//! CTA is then a guaranteed hit (or hit-reserved, which the simulator's
//! `read_hit_rate` also counts): `hits ≥ Σ_stable (touches − ctas)`.
//!
//! The stack-distance histogram and working-set sizes are *reports*,
//! not bounds: they describe the walk's canonical interleaving, which a
//! real schedule may improve on or degrade.

use gpu_sim::{
    coalesce_lines_into, walk, AddrDec, CacheOp, FxHashMap, GpuConfig, KernelSpec, Op, WritePolicy,
};

use crate::distance::ReuseDistance;

/// Absolute slack allowed when testing measured rates against the
/// interval: covers the single rounding step of the simulator's
/// `hits / reads` division, nothing more.
pub const CONTAINMENT_EPS: f64 = 1e-9;

/// Per-line abstract state accumulated by the walk.
#[derive(Debug, Clone, Copy, Default)]
struct LineRec {
    /// Demand/prefetch read line transactions touching this line.
    touches: u64,
    /// Distinct CTAs among those touches (exact: the walk is CTA-major).
    ctas: u64,
    /// Last CTA that read-touched the line, for the distinct count.
    last_cta: u64,
    /// Touched by a cacheable (`CacheAll`/`PrefetchL1`) read.
    read: bool,
    /// Touched by a `CacheAll` store (write-evict: invalidates;
    /// write-back-allocate: installs).
    written: bool,
}

/// A sound L1 read hit-rate interval for one cache geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HitInterval {
    /// Guaranteed-hit fraction: the measured rate cannot fall below.
    pub lo: f64,
    /// Cold-miss bound: the measured rate cannot exceed.
    pub hi: f64,
    /// Read transactions presented to the L1 (`T`); equals the
    /// simulator's `CacheStats::reads` for the same kernel and config.
    pub reads: u64,
    /// Lines whose first read provably misses (`U`).
    pub cold_lines: u64,
    /// Transactions provably hitting (stable-line reuse).
    pub guaranteed_hits: u64,
}

impl HitInterval {
    /// Interval width `hi − lo` (the model's imprecision).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether a measured hit rate lies inside the interval, allowing
    /// [`CONTAINMENT_EPS`] of floating-point slack.
    pub fn contains(&self, rate: f64) -> bool {
        rate >= self.lo - CONTAINMENT_EPS && rate <= self.hi + CONTAINMENT_EPS
    }
}

/// The walked abstract state of one kernel at one L1 line size.
///
/// Collection runs the walk exactly once; geometry queries
/// ([`AccessSummary::hit_interval`]) are pure functions of the summary
/// and can be evaluated for any number of candidate configurations.
#[derive(Debug)]
pub struct AccessSummary {
    /// L1 line size the stream was coalesced at.
    line_bytes: u32,
    /// Total cacheable read line transactions (`T`).
    reads: u64,
    /// Read transactions that bypass the L1 (`BypassL1` ops), counted at
    /// the same line granularity. Reporting only.
    bypassed_reads: u64,
    /// Store ops walked. Reporting only.
    stores: u64,
    /// Atomic ops walked (never touch the L1). Reporting only.
    atomics: u64,
    /// Memory ops of any kind (loads, stores, atomics).
    mem_ops: u64,
    /// Per-line abstract state, keyed by line number (`addr >> log2`).
    lines: FxHashMap<u64, LineRec>,
    /// Exact LRU stack distances of the cacheable read stream in walk
    /// order (reporting only — not part of the sound bounds).
    distance: ReuseDistance,
}

impl AccessSummary {
    /// Walks `kernel` under idealized-RR dispatch on `num_sms` SMs and
    /// folds its access stream at `line_bytes` granularity.
    pub fn collect<K: KernelSpec + ?Sized>(
        kernel: &K,
        num_sms: usize,
        warp_size: u32,
        line_bytes: u32,
    ) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let shift = line_bytes.trailing_zeros();
        let mut s = AccessSummary {
            line_bytes,
            reads: 0,
            bypassed_reads: 0,
            stores: 0,
            atomics: 0,
            mem_ops: 0,
            lines: FxHashMap::default(),
            distance: ReuseDistance::new(),
        };
        let mut line_buf: Vec<u64> = Vec::new();
        walk::each_warp_program(kernel, num_sms, warp_size, |ctx, _warp, prog| {
            for op in prog {
                match op {
                    Op::Load(a) => {
                        s.mem_ops += 1;
                        if a.cache_op == CacheOp::BypassL1 {
                            coalesce_lines_into(a, line_bytes, &mut line_buf);
                            s.bypassed_reads += line_buf.len() as u64;
                            continue;
                        }
                        // CacheAll and PrefetchL1 both present to the L1
                        // and count into its read statistics.
                        coalesce_lines_into(a, line_bytes, &mut line_buf);
                        for &line in line_buf.iter() {
                            let tag = line >> shift;
                            s.reads += 1;
                            s.distance.access(tag);
                            let rec = s.lines.entry(tag).or_default();
                            rec.touches += 1;
                            if rec.ctas == 0 || rec.last_cta != ctx.cta {
                                rec.ctas += 1;
                                rec.last_cta = ctx.cta;
                            }
                            rec.read = true;
                        }
                    }
                    Op::Store(a) => {
                        s.mem_ops += 1;
                        s.stores += 1;
                        if a.cache_op == CacheOp::CacheAll {
                            coalesce_lines_into(a, line_bytes, &mut line_buf);
                            for &line in line_buf.iter() {
                                s.lines.entry(line >> shift).or_default().written = true;
                            }
                        }
                    }
                    Op::Atomic(_) => {
                        s.mem_ops += 1;
                        s.atomics += 1;
                    }
                    Op::Compute(_) | Op::Barrier => {}
                }
            }
        });
        s
    }

    /// [`AccessSummary::collect`] with geometry taken from a GPU preset
    /// (its SM count, warp size and L1 line size).
    pub fn collect_on<K: KernelSpec + ?Sized>(kernel: &K, cfg: &GpuConfig) -> Self {
        AccessSummary::collect(kernel, cfg.num_sms, cfg.warp_size, cfg.l1.line_bytes)
    }

    /// L1 line size the stream was coalesced at.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Cacheable read line transactions (`T`).
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Read transactions carrying an explicit `BypassL1` op.
    pub fn bypassed_reads(&self) -> u64 {
        self.bypassed_reads
    }

    /// Store ops walked.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Atomic ops walked.
    pub fn atomics(&self) -> u64 {
        self.atomics
    }

    /// Memory ops of any kind (loads including bypassed, stores,
    /// atomics).
    pub fn mem_ops(&self) -> u64 {
        self.mem_ops
    }

    /// Distinct lines touched by cacheable reads — the read working set,
    /// in lines.
    pub fn read_working_set(&self) -> u64 {
        self.lines.values().filter(|r| r.read).count() as u64
    }

    /// Distinct lines touched by any access (read or written).
    pub fn working_set(&self) -> u64 {
        self.lines.len() as u64
    }

    /// The LRU stack-distance histogram of the walked read stream,
    /// sorted by distance. Descriptive: the walk's canonical
    /// interleaving, not a bound.
    pub fn distance_histogram(&self) -> Vec<(u64, u64)> {
        self.distance.histogram()
    }

    /// Mean stack distance over all walked reuses (`None` without
    /// reuse).
    pub fn mean_distance(&self) -> Option<f64> {
        self.distance.mean_distance()
    }

    /// Whether the kernel presents no reads to the L1 at all — cache
    /// geometry is then provably irrelevant to its hit statistics.
    pub fn geometry_irrelevant(&self) -> bool {
        self.reads == 0
    }

    /// Whether **every** cacheable read provably misses under `policy`,
    /// in every geometry and under every placement: each read line is
    /// touched exactly once device-wide, and (under write-back-allocate)
    /// never installed by a store first. Clustering, scheduling, L1
    /// capacity and associativity then cannot change the miss count.
    pub fn all_reads_cold(&self, policy: WritePolicy) -> bool {
        self.reads > 0
            && self.lines.values().all(|r| {
                !r.read || (r.touches == 1 && (policy == WritePolicy::WriteEvict || !r.written))
            })
    }

    /// The sound hit-rate interval for `cfg`'s L1 geometry.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.l1.line_bytes` differs from the line size the
    /// summary was collected at — the transaction stream would not be
    /// the one the configuration coalesces.
    pub fn hit_interval(&self, cfg: &GpuConfig) -> HitInterval {
        assert_eq!(
            cfg.l1.line_bytes, self.line_bytes,
            "summary collected at {}B lines, queried at {}B",
            self.line_bytes, cfg.l1.line_bytes
        );
        let t = self.reads;
        if t == 0 || !cfg.l1_enabled {
            // No load is ever presented to the L1: the simulator reports
            // a 0/0 hit rate as 0.0.
            return HitInterval {
                lo: 0.0,
                hi: 0.0,
                reads: 0,
                cold_lines: 0,
                guaranteed_hits: 0,
            };
        }
        let wba = cfg.l1.write_policy == WritePolicy::WriteBackAllocate;
        // Install-capable under this policy: stores install lines only
        // when the L1 allocates on write.
        let installs = |r: &LineRec| r.read || (wba && r.written);
        // U: first read provably misses when no store can pre-install.
        let cold_lines = self
            .lines
            .values()
            .filter(|r| r.read && (!wba || !r.written))
            .count() as u64;
        let hi = (t - cold_lines) as f64 / t as f64;

        // Per-set footprints over the per-sector sub-array, through the
        // same hashed decoder the hardware model indexes with.
        let sub = gpu_sim::CacheConfig {
            size_bytes: cfg.l1.size_bytes / cfg.l1_sectors,
            ..cfg.l1.clone()
        };
        let dec = AddrDec::for_cache(
            sub.line_bytes,
            sub.effective_sector_bytes(),
            sub.num_sets() as u64,
        );
        let assoc = cfg.l1.associativity as u64;
        let mut footprint: FxHashMap<u64, u64> = FxHashMap::default();
        for (&tag, rec) in &self.lines {
            if installs(rec) {
                *footprint.entry(dec.set_of_tag(tag)).or_insert(0) += 1;
            }
        }
        let mut guaranteed = 0u64;
        for (&tag, rec) in &self.lines {
            if !rec.read || (!wba && rec.written) {
                continue;
            }
            if footprint[&dec.set_of_tag(tag)] <= assoc {
                guaranteed += rec.touches - rec.ctas;
            }
        }
        let lo = guaranteed as f64 / t as f64;
        debug_assert!(
            lo <= hi + CONTAINMENT_EPS,
            "interval inverted: lo {lo} > hi {hi}"
        );
        HitInterval {
            lo: lo.min(hi),
            hi,
            reads: t,
            cold_lines,
            guaranteed_hits: guaranteed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{arch, CtaContext, Dim3, LaunchConfig, MemAccess, Program};

    /// CTAs re-read a private slice `reps` times; optionally every CTA
    /// also reads one shared table line.
    #[derive(Debug, Clone)]
    struct Slices {
        ctas: u64,
        reps: u64,
        shared: bool,
    }

    impl KernelSpec for Slices {
        fn name(&self) -> String {
            "slices".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::linear(self.ctas as u32), 32u32)
        }
        fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
            let mut prog = Vec::new();
            if self.shared {
                prog.push(Op::Load(MemAccess::coalesced(0, 0, 32, 4)));
            }
            let own = (1 << 20) + ctx.cta * 128;
            for _ in 0..self.reps {
                prog.push(Op::Load(MemAccess::coalesced(1, own, 32, 4)));
            }
            prog
        }
    }

    #[test]
    fn counts_and_working_set() {
        let k = Slices {
            ctas: 4,
            reps: 3,
            shared: true,
        };
        let s = AccessSummary::collect(&k, 2, 32, 128);
        // Per CTA: 1 shared line + 3 touches of its own line.
        assert_eq!(s.reads(), 4 * 4);
        assert_eq!(s.read_working_set(), 5);
        assert_eq!(s.working_set(), 5);
        assert_eq!(s.stores(), 0);
        assert!(!s.geometry_irrelevant());
    }

    #[test]
    fn interval_brackets_private_reuse() {
        let k = Slices {
            ctas: 4,
            reps: 3,
            shared: false,
        };
        let s = AccessSummary::collect(&k, 2, 32, 128);
        let iv = s.hit_interval(&arch::gtx570());
        // 4 lines, 3 touches each: 12 reads, 4 cold, 8 guaranteed hits
        // (tiny footprint, so every line is stable).
        assert_eq!(iv.reads, 12);
        assert_eq!(iv.cold_lines, 4);
        assert_eq!(iv.guaranteed_hits, 8);
        assert!((iv.lo - 8.0 / 12.0).abs() < 1e-12);
        assert!((iv.hi - 8.0 / 12.0).abs() < 1e-12);
        assert!(iv.contains(8.0 / 12.0));
        assert!(!iv.contains(0.5));
    }

    #[test]
    fn shared_line_loosens_lower_bound() {
        let k = Slices {
            ctas: 4,
            reps: 1,
            shared: true,
        };
        let s = AccessSummary::collect(&k, 2, 32, 128);
        let iv = s.hit_interval(&arch::gtx570());
        // Shared line: 4 touches by 4 distinct CTAs — no guaranteed
        // reuse; own lines are cold. hi still credits the 3 potential
        // shared-line hits.
        assert_eq!(iv.reads, 8);
        assert_eq!(iv.cold_lines, 5);
        assert_eq!(iv.guaranteed_hits, 0);
        assert!((iv.hi - 3.0 / 8.0).abs() < 1e-12);
        assert_eq!(iv.lo, 0.0);
    }

    #[test]
    fn streaming_kernel_is_provably_cold() {
        let k = Slices {
            ctas: 8,
            reps: 1,
            shared: false,
        };
        let s = AccessSummary::collect(&k, 2, 32, 128);
        assert!(s.all_reads_cold(WritePolicy::WriteEvict));
        let iv = s.hit_interval(&arch::gtx570());
        assert_eq!((iv.lo, iv.hi), (0.0, 0.0));
    }

    /// Store-then-read of one line: write-evict keeps the read cold,
    /// write-back-allocate may install it.
    #[derive(Debug, Clone)]
    struct WriteThenRead;

    impl KernelSpec for WriteThenRead {
        fn name(&self) -> String {
            "write-then-read".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::linear(1), 32u32)
        }
        fn warp_program(&self, _ctx: &CtaContext, _warp: u32) -> Program {
            vec![
                Op::Store(MemAccess::coalesced(0, 0, 32, 4)),
                Op::Load(MemAccess::coalesced(0, 0, 32, 4)),
                Op::Load(MemAccess::coalesced(0, 0, 32, 4)),
            ]
        }
    }

    #[test]
    fn write_policy_changes_both_bounds() {
        let s = AccessSummary::collect(&WriteThenRead, 1, 32, 128);
        let we = arch::gtx570();
        let iv = s.hit_interval(&we);
        // Write-evict: the store invalidates, the line is written — not
        // stable — so no guaranteed hits; first read still provably
        // misses.
        assert_eq!(iv.cold_lines, 1);
        assert_eq!(iv.guaranteed_hits, 0);
        assert!((iv.hi - 0.5).abs() < 1e-12);

        let mut wba = arch::gtx570();
        wba.l1.write_policy = WritePolicy::WriteBackAllocate;
        let iv = s.hit_interval(&wba);
        // Write-back-allocate: the store may install the line, so even
        // the first read may hit (hi = 1); reuse is guaranteed for the
        // second.
        assert_eq!(iv.cold_lines, 0);
        assert!((iv.hi - 1.0).abs() < 1e-12);
        assert_eq!(iv.guaranteed_hits, 1);
        assert!(!s.all_reads_cold(WritePolicy::WriteBackAllocate));
    }

    #[test]
    fn disabled_l1_collapses_interval() {
        let k = Slices {
            ctas: 2,
            reps: 2,
            shared: false,
        };
        let s = AccessSummary::collect(&k, 2, 32, 128);
        let cfg = arch::gtx570().with_l1_disabled();
        let iv = s.hit_interval(&cfg);
        assert_eq!((iv.lo, iv.hi, iv.reads), (0.0, 0.0, 0));
    }

    #[test]
    #[should_panic(expected = "collected at")]
    fn line_size_mismatch_panics() {
        let k = Slices {
            ctas: 1,
            reps: 1,
            shared: false,
        };
        let s = AccessSummary::collect(&k, 1, 32, 32);
        let _ = s.hit_interval(&arch::gtx570()); // 128B lines
    }
}
