//! Canonical content hashing of kernel descriptions and summaries.
//!
//! The plan server (`cta-serve`) keys its content-addressed caches on a
//! digest of the *semantic* fields of a kernel description — grid
//! geometry, access-pattern summary, target GPU — so that identical
//! tenant requests and parameter-sweep twins collapse onto one cache
//! entry no matter how their JSON was formatted. The hash is therefore
//! defined over typed values, never over serialized text: field order,
//! whitespace, and number formatting cannot perturb it by construction,
//! while any semantic field flip must.
//!
//! Two properties the users of this module rely on (and the serve
//! proptest battery pins):
//!
//! * **Stability.** The digest of a value sequence is a pure function of
//!   the sequence; it does not depend on process, thread, pointer
//!   values, or hash-map iteration order. It is safe to persist and to
//!   compare across processes.
//! * **Framing.** Every value is fed with a type tag and every
//!   variable-length value with its length, so concatenation ambiguities
//!   (`"ab","c"` vs `"a","bc"`) produce different digests.
//!
//! The digest is 128 bits: two independent FNV-1a-64 lanes with distinct
//! offset bases, the second lane seeded by the first's offset to keep
//! the lanes decorrelated. This is not a cryptographic hash — the cache
//! tolerates an adversary-free environment — but 128 bits make
//! accidental collisions negligible at any realistic request volume.

/// A 128-bit content digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub u128);

impl Digest {
    /// Lower 64 bits — the shard selector the serve cache uses.
    pub fn lo(&self) -> u64 {
        self.0 as u64
    }

    /// Renders the digest as 32 lowercase hex digits.
    pub fn to_hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the 32-hex-digit form produced by [`Digest::to_hex`].
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Digest)
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET_B: u64 = 0x84222325_cbf29ce4;

/// Value-type tags framing the byte stream. One byte each; never reuse
/// a published tag for a different meaning (digests are persisted in
/// golden fixtures and bench artifacts).
#[derive(Debug, Clone, Copy)]
enum Tag {
    U64 = 1,
    I64 = 2,
    Bool = 3,
    Str = 4,
    F64 = 5,
    ListBegin = 6,
    ListEnd = 7,
    Field = 8,
}

/// Streaming canonical hasher. Feed typed values in a fixed, documented
/// order; call [`CanonHasher::digest`] at the end.
///
/// ```
/// use locality::canon::CanonHasher;
/// let mut h = CanonHasher::new("kernel/v1");
/// h.field("grid").u64(64).u64(16).u64(1);
/// h.field("block").u64(64);
/// let d = h.digest();
/// assert_eq!(d, {
///     let mut h2 = CanonHasher::new("kernel/v1");
///     h2.field("grid").u64(64).u64(16).u64(1);
///     h2.field("block").u64(64);
///     h2.digest()
/// });
/// ```
#[derive(Debug, Clone)]
pub struct CanonHasher {
    a: u64,
    b: u64,
}

impl CanonHasher {
    /// Starts a hasher for the given schema label. The label is part of
    /// the digest, so digests of different schemas never collide by
    /// construction.
    pub fn new(schema: &str) -> CanonHasher {
        let mut h = CanonHasher {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        };
        h.str(schema);
        h
    }

    fn byte(&mut self, byte: u8) {
        self.a = (self.a ^ byte as u64).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ byte as u64).wrapping_mul(FNV_PRIME);
        // Cross-feed one bit of lane A into lane B so the two lanes
        // cannot stay in lockstep on structured input.
        self.b ^= self.a.rotate_left(29) & 0x1;
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    fn tag(&mut self, t: Tag) {
        self.byte(t as u8);
    }

    /// Feeds a field marker: a named boundary between logical fields.
    /// Returns `&mut self` for chaining.
    pub fn field(&mut self, name: &str) -> &mut CanonHasher {
        self.tag(Tag::Field);
        self.bytes(&(name.len() as u64).to_le_bytes());
        self.bytes(name.as_bytes());
        self
    }

    /// Feeds an unsigned integer.
    pub fn u64(&mut self, v: u64) -> &mut CanonHasher {
        self.tag(Tag::U64);
        self.bytes(&v.to_le_bytes());
        self
    }

    /// Feeds a signed integer.
    pub fn i64(&mut self, v: i64) -> &mut CanonHasher {
        self.tag(Tag::I64);
        self.bytes(&v.to_le_bytes());
        self
    }

    /// Feeds a boolean.
    pub fn bool(&mut self, v: bool) -> &mut CanonHasher {
        self.tag(Tag::Bool);
        self.byte(v as u8);
        self
    }

    /// Feeds a string (length-framed).
    pub fn str(&mut self, v: &str) -> &mut CanonHasher {
        self.tag(Tag::Str);
        self.bytes(&(v.len() as u64).to_le_bytes());
        self.bytes(v.as_bytes());
        self
    }

    /// Feeds a float by its IEEE-754 bit pattern, with `-0.0`
    /// canonicalized to `0.0` and every NaN to the quiet NaN, so
    /// semantically equal values digest equally.
    pub fn f64(&mut self, v: f64) -> &mut CanonHasher {
        let canon = if v == 0.0 {
            0.0f64
        } else if v.is_nan() {
            f64::NAN
        } else {
            v
        };
        self.tag(Tag::F64);
        self.bytes(&canon.to_bits().to_le_bytes());
        self
    }

    /// Opens a list frame. Lists are length-delimited by their
    /// begin/end tags, so `[a][b]` and `[a, b]` digest differently.
    pub fn list_begin(&mut self) -> &mut CanonHasher {
        self.tag(Tag::ListBegin);
        self
    }

    /// Closes a list frame.
    pub fn list_end(&mut self) -> &mut CanonHasher {
        self.tag(Tag::ListEnd);
        self
    }

    /// The 128-bit digest of everything fed so far.
    pub fn digest(&self) -> Digest {
        Digest(((self.a as u128) << 64) | self.b as u128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_across_calls() {
        let build = || {
            let mut h = CanonHasher::new("test/v1");
            h.field("grid").u64(64).u64(16).u64(1);
            h.field("name").str("MM");
            h.field("rate").f64(0.25);
            h.digest()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn any_field_flip_changes_the_digest() {
        let base = {
            let mut h = CanonHasher::new("test/v1");
            h.field("a").u64(1).field("b").str("x").field("c").f64(2.0);
            h.digest()
        };
        let flip_a = {
            let mut h = CanonHasher::new("test/v1");
            h.field("a").u64(2).field("b").str("x").field("c").f64(2.0);
            h.digest()
        };
        let flip_b = {
            let mut h = CanonHasher::new("test/v1");
            h.field("a").u64(1).field("b").str("y").field("c").f64(2.0);
            h.digest()
        };
        let flip_c = {
            let mut h = CanonHasher::new("test/v1");
            h.field("a").u64(1).field("b").str("x").field("c").f64(2.5);
            h.digest()
        };
        assert_ne!(base, flip_a);
        assert_ne!(base, flip_b);
        assert_ne!(base, flip_c);
        assert_ne!(flip_a, flip_b);
    }

    #[test]
    fn framing_prevents_concatenation_ambiguity() {
        let ab_c = {
            let mut h = CanonHasher::new("t");
            h.str("ab").str("c");
            h.digest()
        };
        let a_bc = {
            let mut h = CanonHasher::new("t");
            h.str("a").str("bc");
            h.digest()
        };
        assert_ne!(ab_c, a_bc);

        let one_list = {
            let mut h = CanonHasher::new("t");
            h.list_begin().u64(1).u64(2).list_end();
            h.digest()
        };
        let two_lists = {
            let mut h = CanonHasher::new("t");
            h.list_begin()
                .u64(1)
                .list_end()
                .list_begin()
                .u64(2)
                .list_end();
            h.digest()
        };
        assert_ne!(one_list, two_lists);
    }

    #[test]
    fn schema_label_partitions_the_digest_space() {
        let mk = |schema: &str| {
            let mut h = CanonHasher::new(schema);
            h.u64(7);
            h.digest()
        };
        assert_ne!(mk("kernel/v1"), mk("kernel/v2"));
    }

    #[test]
    fn float_canonicalization() {
        let mk = |v: f64| {
            let mut h = CanonHasher::new("t");
            h.f64(v);
            h.digest()
        };
        assert_eq!(mk(0.0), mk(-0.0));
        assert_eq!(mk(f64::NAN), mk(-f64::NAN));
        assert_ne!(mk(1.0), mk(1.0000000000000002));
    }

    #[test]
    fn hex_round_trip() {
        let mut h = CanonHasher::new("t");
        h.str("round-trip");
        let d = h.digest();
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(d.to_hex().len(), 32);
        assert!(Digest::from_hex("xyz").is_none());
        assert!(Digest::from_hex("0123").is_none());
    }
}
