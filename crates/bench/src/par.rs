//! Parallel evaluation engine: fans the independent simulations of the
//! Figure 12/13 matrix across OS threads.
//!
//! Each simulation is single-threaded and deterministic; what this
//! module parallelizes is the *matrix* — app × architecture × variant,
//! with every throttle-sweep candidate as its own job. Work is
//! distributed through an index-keyed job queue (`std::thread::scope` +
//! `std::sync::mpsc`; zero external dependencies) and results land in
//! preallocated slots keyed by job index, so output is byte-identical to
//! the serial path regardless of thread count or scheduling order.
//!
//! Thread count comes from the `CLUSTER_BENCH_THREADS` environment
//! variable; unset defaults to [`std::thread::available_parallelism`],
//! and `1` selects the legacy serial path (no threads spawned at all).

use crate::evaluation::ArchEvaluation;
use crate::runner::{AppPlan, SimRequest};
use cta_clustering::ClusterError;
use gpu_sim::{GpuConfig, RunStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// Total simulation time accumulated across all threads (nanoseconds).
/// Drives the "effective parallel speedup" line in bin footers.
static BUSY_NANOS: AtomicU64 = AtomicU64::new(0);

/// Adds `d` to the process-wide busy-time counter. Called by
/// [`AppPlan::run`] around every simulation, on whichever thread runs it.
///
/// When telemetry is on, the same quantity lands on the recorder as
/// `time/busy_ns` — a wall-clock metric, so it appears in the Chrome
/// trace but is excluded from the deterministic JSONL export.
pub fn record_busy(d: Duration) {
    BUSY_NANOS.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    if let Some(obs) = cta_obs::maybe_global() {
        obs.counter("time/busy_ns", "", d.as_nanos() as u64);
    }
}

/// Busy time accumulated so far.
pub fn busy_time() -> Duration {
    Duration::from_nanos(BUSY_NANOS.load(Ordering::Relaxed))
}

/// Number of worker threads the harness should use.
///
/// Reads `CLUSTER_BENCH_THREADS`; a missing, empty, or unparsable value
/// falls back to [`std::thread::available_parallelism`]. `1` means the
/// legacy serial path. Values are clamped to at least 1.
pub fn configured_threads() -> usize {
    match std::env::var("CLUSTER_BENCH_THREADS") {
        Ok(v) if !v.trim().is_empty() => match v.trim().parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => {
                eprintln!(
                    "warning: ignoring unparsable CLUSTER_BENCH_THREADS={v:?}; \
                     using available parallelism"
                );
                default_threads()
            }
        },
        _ => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item, using up to `threads` worker threads, and
/// returns results in input order.
///
/// With `threads <= 1` (or fewer than two items) this runs inline on the
/// calling thread — the legacy serial path, spawning nothing. Otherwise
/// workers pull item indices from a shared queue and write results into
/// the slot of the same index, which makes the output independent of
/// which worker ran which item. A panic in `f` propagates to the caller
/// once the scope joins.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let (tx, rx) = mpsc::channel::<usize>();
    for i in 0..items.len() {
        tx.send(i).expect("queue send");
    }
    drop(tx); // Workers drain until the queue reports disconnected.
    let queue = Mutex::new(rx);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(items.len()) {
            s.spawn(|| loop {
                // Hold the queue lock only for the recv, not the work.
                let wait_start = Instant::now();
                let next = queue.lock().expect("queue lock").recv();
                if let Some(obs) = cta_obs::maybe_global() {
                    // Queue-wait vs busy: wall-clock, so `time/`-prefixed
                    // (Chrome trace only, never the deterministic JSONL).
                    obs.counter(
                        "time/queue_wait_ns",
                        "",
                        wait_start.elapsed().as_nanos() as u64,
                    );
                }
                match next {
                    Ok(i) => *slots[i].lock().expect("slot lock") = Some(f(&items[i])),
                    Err(_) => break,
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot lock").expect("every job ran"))
        .collect()
}

/// Runs the full evaluation matrix for the given GPUs across `threads`
/// workers, producing exactly what mapping
/// [`crate::evaluate_arch`] over `cfgs` produces.
///
/// Two fan-out phases: phase A runs every simulation whose inputs are
/// known up front (baseline, RD, CLU, and each throttle-sweep candidate,
/// for every app on every architecture); after the sweep winners are
/// selected, phase B runs the two variants that depend on them
/// (CLU+TOT+BPS and PFH+TOT).
///
/// # Errors
///
/// Propagates the first [`AppPlan::run`] failure of either phase.
pub fn evaluate_matrix(
    cfgs: &[GpuConfig],
    threads: usize,
) -> Result<Vec<ArchEvaluation>, ClusterError> {
    // Plans are cheap (no simulation), so build them inline.
    let plans: Vec<Vec<AppPlan>> = cfgs
        .iter()
        .map(|cfg| {
            gpu_kernels::suite::table2_suite(cfg.arch)
                .into_iter()
                .map(|w| AppPlan::new(cfg, w))
                .collect()
        })
        .collect();
    Ok(cfgs
        .iter()
        .zip(run_plans(&plans, threads)?)
        .map(|(cfg, apps)| ArchEvaluation {
            gpu: cfg.name.clone(),
            arch: cfg.arch,
            apps,
        })
        .collect())
}

/// Evaluates an explicit set of workloads on one GPU across `threads`
/// workers. Equivalent to calling [`crate::evaluate_app`] on each
/// workload in order; useful for partial matrices (and the determinism
/// regression tests).
pub fn evaluate_apps_par(
    cfg: &GpuConfig,
    workloads: Vec<Box<dyn gpu_kernels::Workload>>,
    threads: usize,
) -> Result<Vec<crate::runner::AppEvaluation>, ClusterError> {
    let plans = vec![workloads
        .into_iter()
        .map(|w| AppPlan::new(cfg, w))
        .collect()];
    Ok(run_plans(&plans, threads)?
        .pop()
        .expect("one plan row in, one out"))
}

/// The two-phase fan-out over prepared plans (outer index = architecture,
/// inner = app). Returns evaluations in the same shape and order.
///
/// Each phase runs all its jobs to completion (the pool has no early
/// cancellation), then surfaces the first error in job order so the
/// reported failure is deterministic.
fn run_plans(
    plans: &[Vec<AppPlan>],
    threads: usize,
) -> Result<Vec<Vec<crate::runner::AppEvaluation>>, ClusterError> {
    // Phase A: flatten (arch, app, request) into one job list.
    let jobs_a: Vec<(usize, usize, SimRequest)> = plans
        .iter()
        .enumerate()
        .flat_map(|(ai, apps)| {
            apps.iter().enumerate().flat_map(move |(pi, plan)| {
                plan.phase_a().into_iter().map(move |req| (ai, pi, req))
            })
        })
        .collect();
    let stats_a: Vec<RunStats> = par_map(&jobs_a, threads, |&(ai, pi, req)| plans[ai][pi].run(req))
        .into_iter()
        .collect::<Result<_, _>>()?;

    // Regroup phase-A stats per app (jobs were emitted app-major) and
    // pick each app's throttle winner.
    let mut grouped_a: Vec<Vec<Vec<RunStats>>> = plans
        .iter()
        .map(|apps| apps.iter().map(|_| Vec::new()).collect())
        .collect();
    for (&(ai, pi, _), stats) in jobs_a.iter().zip(stats_a) {
        grouped_a[ai][pi].push(stats);
    }
    let chosen: Vec<Vec<(u32, usize)>> = plans
        .iter()
        .zip(&grouped_a)
        .map(|(apps, stats)| {
            apps.iter()
                .zip(stats)
                .map(|(plan, s)| plan.select_throttle(s))
                .collect()
        })
        .collect();

    // Phase B: the sweep-dependent variants.
    let jobs_b: Vec<(usize, usize, SimRequest)> = plans
        .iter()
        .enumerate()
        .flat_map(|(ai, apps)| {
            apps.iter().enumerate().flat_map({
                let chosen = &chosen;
                move |(pi, plan)| {
                    plan.phase_b(chosen[ai][pi].0)
                        .into_iter()
                        .map(move |req| (ai, pi, req))
                }
            })
        })
        .collect();
    let stats_b: Vec<RunStats> = par_map(&jobs_b, threads, |&(ai, pi, req)| plans[ai][pi].run(req))
        .into_iter()
        .collect::<Result<_, _>>()?;
    let mut grouped_b: Vec<Vec<Vec<RunStats>>> = plans
        .iter()
        .map(|apps| apps.iter().map(|_| Vec::new()).collect())
        .collect();
    for (&(ai, pi, _), stats) in jobs_b.iter().zip(stats_b) {
        grouped_b[ai][pi].push(stats);
    }

    // Assemble in input order — identical to the serial path.
    Ok(plans
        .iter()
        .enumerate()
        .map(|(ai, apps)| {
            apps.iter()
                .enumerate()
                .map(|(pi, plan)| {
                    plan.assemble(
                        std::mem::take(&mut grouped_a[ai][pi]),
                        chosen[ai][pi],
                        std::mem::take(&mut grouped_b[ai][pi]),
                    )
                })
                .collect()
        })
        .collect())
}

/// Parallel counterpart of [`crate::evaluate_arch`].
///
/// # Errors
///
/// Propagates the first [`AppPlan::run`] failure.
pub fn evaluate_arch_par(cfg: &GpuConfig, threads: usize) -> Result<ArchEvaluation, ClusterError> {
    Ok(evaluate_matrix(std::slice::from_ref(cfg), threads)?
        .pop()
        .expect("one arch in, one evaluation out"))
}

/// Parallel counterpart of [`crate::evaluate_all`].
///
/// # Errors
///
/// Propagates the first [`AppPlan::run`] failure.
pub fn evaluate_all_par(threads: usize) -> Result<Vec<ArchEvaluation>, ClusterError> {
    evaluate_matrix(&gpu_sim::arch::all_presets(), threads)
}

/// Tunes glibc's allocator for the harness's allocation pattern.
///
/// Each simulation allocates a handful of MB-scale slabs (cache arrays,
/// CTA placements, profiler pages) that die with the run. Under glibc's
/// defaults those exceed the mmap threshold, so every run pays
/// mmap/munmap plus a page fault per touched page — measured at ~14% of
/// `fig12_speedup` wall time as system time. Raising the mmap and trim
/// thresholds keeps the slabs in the main arena, where the next run
/// reuses the same already-faulted pages. No-op off glibc; values are
/// per-process hints, not correctness-relevant.
pub fn tune_allocator() {
    #[cfg(target_env = "gnu")]
    {
        // From <malloc.h>: M_TRIM_THRESHOLD = -1, M_MMAP_THRESHOLD = -3.
        extern "C" {
            fn mallopt(param: core::ffi::c_int, value: core::ffi::c_int) -> core::ffi::c_int;
        }
        // SAFETY: mallopt only writes malloc's own tuning parameters;
        // called once at bin startup before any worker threads exist.
        unsafe {
            mallopt(-1, 512 << 20);
            mallopt(-3, 64 << 20);
        }
    }
}

/// Wraps a bin's body in a root telemetry span and, when `CLUSTER_OBS`
/// is set, exports `<bin>.jsonl` (deterministic) and `<bin>.trace.json`
/// (Chrome trace) on the way out. The export paths go to *stderr* so a
/// bin's stdout stays byte-comparable across telemetry modes.
///
/// Also applies [`tune_allocator`], so every figure bin gets the
/// allocator tuned the same way.
pub fn with_obs<R>(bin: &str, f: impl FnOnce() -> R) -> R {
    tune_allocator();
    let result = {
        let _root = cta_obs::span(format!("bin/{bin}"));
        f()
    };
    if let Some((jsonl, trace)) = cta_obs::export_global(bin) {
        eprintln!(
            "telemetry: wrote {} and {}",
            jsonl.display(),
            trace.display()
        );
    }
    result
}

/// Wall-clock + busy-time bracket for a bin's report footer.
#[derive(Debug)]
pub struct RunClock {
    start: Instant,
    busy_at_start: Duration,
    threads: usize,
}

impl RunClock {
    /// Starts timing; `threads` is echoed in the footer.
    pub fn start(threads: usize) -> RunClock {
        RunClock {
            start: Instant::now(),
            busy_at_start: busy_time(),
            threads,
        }
    }

    /// The footer line: elapsed wall-clock, accumulated simulation time,
    /// and the effective parallel speedup (busy / wall).
    pub fn footer(&self) -> String {
        let wall = self.start.elapsed();
        let busy = busy_time().saturating_sub(self.busy_at_start);
        let speedup = busy.as_secs_f64() / wall.as_secs_f64().max(1e-9);
        format!(
            "elapsed {:.2}s wall, {:.2}s simulating on {} thread{} (effective parallel speedup {:.2}x)",
            wall.as_secs_f64(),
            busy.as_secs_f64(),
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            speedup,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..64).collect();
        for threads in [1, 2, 4, 7] {
            let out = par_map(&items, threads, |&x| x * x);
            assert_eq!(
                out,
                items.iter().map(|&x| x * x).collect::<Vec<_>>(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let none: Vec<u32> = vec![];
        assert_eq!(par_map(&none, 4, |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_runs_every_job_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let calls = AtomicUsize::new(0);
        let items: Vec<usize> = (0..33).collect();
        let out = par_map(&items, 3, |&i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 33);
        assert_eq!(calls.load(Ordering::Relaxed), 33);
    }

    #[test]
    fn busy_clock_accumulates() {
        let clock = RunClock::start(2);
        record_busy(Duration::from_millis(10));
        let footer = clock.footer();
        assert!(footer.contains("2 threads"), "{footer}");
        assert!(footer.contains("effective parallel speedup"), "{footer}");
    }

    #[test]
    fn thread_count_env_parsing() {
        // Can't mutate the environment safely in parallel tests; just
        // check the fallback is sane.
        assert!(default_threads() >= 1);
    }
}
