//! Criterion microbenchmarks of the partition arithmetic: the per-CTA
//! index-calculation overhead is exactly what the paper blames for the
//! tile-wise indexing's disappointing end-to-end results (§5.2-(6)-(1)).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use cta_clustering::{Indexing, Partition};
use gpu_sim::Dim3;

fn bench_assign_invert(c: &mut Criterion) {
    let grid = Dim3::plane(64, 64);
    let m = 16;
    let mut group = c.benchmark_group("partition_round_trip");
    for (name, indexing) in [
        ("row_major", Indexing::RowMajor),
        ("col_major", Indexing::ColMajor),
        (
            "tile_4x4",
            Indexing::Tile {
                tile_x: 4,
                tile_y: 4,
            },
        ),
    ] {
        let p = Partition::new(grid, m, indexing).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &p, |b, p| {
            b.iter(|| {
                let mut acc = 0u64;
                for v in 0..grid.count() {
                    let (w, i) = p.assign(black_box(v));
                    acc ^= p.invert(w, i);
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_cluster_materialization(c: &mut Criterion) {
    let grid = Dim3::plane(128, 128);
    let p = Partition::y(grid, 20).unwrap();
    c.bench_function("cluster_materialize_16k_ctas", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for i in 0..p.num_clusters() {
                total += p.cluster(black_box(i)).len();
            }
            total
        })
    });
}

criterion_group!(benches, bench_assign_invert, bench_cluster_materialization);
criterion_main!(benches);
