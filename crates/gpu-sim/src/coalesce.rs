//! The load/store unit's coalescer: collapses the per-lane addresses of a
//! warp-wide access into the minimal set of cache-line transactions.
//!
//! Shape classification (contiguous / sorted / divergent) costs at most one
//! early-exit scan: contiguity is one vectorizable `windows(2)` compare that
//! aborts on the first break, and everything after that is decided *while
//! emitting*, so the sorted and divergent shapes never pay a second
//! classification pass and the divergent tail never pays a quadratic
//! `contains` dedup. Divergent dedup runs through [`LaneSet`], a fixed-size
//! insertion-dedup set sized for the ≤64 lines a 32-lane warp can touch.

use crate::kernel::{MemAccess, ShapeHint};

/// Number of slots in a [`LaneSet`] table. A 32-lane warp touches at most
/// 64 distinct lines (two per straddling 8-byte lane), so 128 slots keep
/// the load factor at or below 50% for every real warp shape.
const LANE_SET_SLOTS: usize = 128;
const LANE_SET_SLOT_MASK: usize = LANE_SET_SLOTS - 1;
/// Residency cap before inserts spill to the overflow `Vec`. Capping below
/// the slot count keeps linear probes short even for adversarial inputs
/// (e.g. a synthetic gather with hundreds of distinct lanes).
const LANE_SET_MAX_LIVE: u32 = 96;
/// Fibonacci multiplier (same constant family as `addrdec`'s hashed index);
/// the top seven product bits pick the home slot.
const LANE_SET_HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// A fixed-capacity insertion-dedup set for warp-sized key populations.
///
/// Open addressing with linear probing over 128 generation-stamped slots:
/// clearing is one counter bump ([`LaneSet::begin`]), not a table wipe, so a
/// long-lived instance (the streaming-tags profiler, for example) dedups
/// each access without re-zeroing 1.5 KiB. Keys beyond the residency cap
/// spill to a `Vec` — the only path that can allocate, and one that a
/// ≤32-lane access can never reach.
#[derive(Debug, Clone)]
pub struct LaneSet {
    keys: [u64; LANE_SET_SLOTS],
    gens: [u32; LANE_SET_SLOTS],
    gen: u32,
    live: u32,
    spill: Vec<u64>,
}

impl LaneSet {
    /// An empty set. The slot arrays start zeroed with the generation at 1,
    /// so every slot reads as vacant without a separate fill pass.
    pub fn new() -> LaneSet {
        LaneSet {
            keys: [0; LANE_SET_SLOTS],
            gens: [0; LANE_SET_SLOTS],
            gen: 1,
            live: 0,
            spill: Vec::new(),
        }
    }

    /// Clears the set by advancing the generation stamp (O(1) except once
    /// every `u32::MAX` clears, when the stamps are re-zeroed).
    pub fn begin(&mut self) {
        self.live = 0;
        self.spill.clear();
        if self.gen == u32::MAX {
            self.gens = [0; LANE_SET_SLOTS];
            self.gen = 1;
        } else {
            self.gen += 1;
        }
    }

    /// Inserts `key`, returning `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, key: u64) -> bool {
        let mut i = (key.wrapping_mul(LANE_SET_HASH_MUL) >> 57) as usize;
        while self.gens[i] == self.gen {
            if self.keys[i] == key {
                return false;
            }
            i = (i + 1) & LANE_SET_SLOT_MASK;
        }
        if self.live < LANE_SET_MAX_LIVE {
            self.keys[i] = key;
            self.gens[i] = self.gen;
            self.live += 1;
            true
        } else if self.spill.contains(&key) {
            false
        } else {
            self.spill.push(key);
            true
        }
    }

    /// Number of distinct keys inserted since the last [`LaneSet::begin`].
    pub fn len(&self) -> usize {
        self.live as usize + self.spill.len()
    }

    /// Whether no key has been inserted since the last [`LaneSet::begin`].
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for LaneSet {
    fn default() -> LaneSet {
        LaneSet::new()
    }
}

/// The lane-address shape the coalescer classified an access as, reported
/// so the engine's work model can count how often each emission path runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalesceShape {
    /// Consecutive equal-sized lanes (includes scalar and empty accesses):
    /// lines are emitted as one ascending arithmetic sequence.
    Contiguous,
    /// Strictly increasing but non-contiguous lanes: lines still ascend, so
    /// dedup is a single `last()` compare per candidate line.
    Sorted,
    /// Unsorted (or degenerate word-size) lanes: the remaining tail dedups
    /// through a [`LaneSet`].
    Divergent,
}

/// Collapses per-lane addresses into distinct line-aligned transactions of
/// `line_bytes` granularity, preserving first-touch order.
///
/// Accounts for lanes whose word straddles a line boundary (possible for
/// unaligned 8-byte accesses against 32B lines) by emitting both lines.
///
/// # Examples
///
/// ```
/// use gpu_sim::{coalesce_lines, MemAccess};
///
/// // 32 consecutive floats: one 128B transaction, four 32B transactions.
/// let a = MemAccess::coalesced(0, 0, 32, 4);
/// assert_eq!(coalesce_lines(&a, 128).len(), 1);
/// assert_eq!(coalesce_lines(&a, 32).len(), 4);
/// ```
pub fn coalesce_lines(access: &MemAccess, line_bytes: u32) -> Vec<u64> {
    let mut lines = Vec::with_capacity(4);
    coalesce_lines_into(access, line_bytes, &mut lines);
    lines
}

/// [`coalesce_lines`], writing into a caller-provided buffer and returning
/// the [`CoalesceShape`] the classifier took.
///
/// Clears `out` first and fills it with the same lines in the same
/// (first-touch) order. The simulation engine calls this once per memory
/// instruction, so reusing one scratch buffer across the whole run removes
/// the hot path's per-access allocations.
///
/// Fully contiguous accesses (each lane exactly `bytes_per_lane` after the
/// previous — the overwhelmingly common shape) are recognized by one
/// early-exit `windows(2)` compare and emitted as an arithmetic line range
/// with no per-lane state. Everything else is classified in a single
/// emitting pass: the sorted regime (strictly increasing addresses, where
/// emitted lines provably ascend so "already emitted" is one compare against
/// the last emitted line, cached in a register) downgrades one-way to the
/// divergent regime, which seeds a [`LaneSet`] with the lines already
/// emitted and dedups the remaining tail through it. The downgrade never
/// re-scans: the prefix emitted under the sorted regime is already in
/// first-touch order.
///
/// Degenerate word sizes (`bytes_per_lane` of zero, or wider than a line)
/// take the divergent path directly: a word there can span more than the
/// two lines the ordered regimes account for, and per-lane first/last-line
/// emission (the historical general-path semantics) is the only consistent
/// definition.
pub fn coalesce_lines_into(
    access: &MemAccess,
    line_bytes: u32,
    out: &mut Vec<u64>,
) -> CoalesceShape {
    debug_assert!(line_bytes.is_power_of_two());
    let mask = !(line_bytes as u64 - 1);
    out.clear();
    let bpl = access.bytes_per_lane as u64;
    let addrs = &access.addrs[..];
    let shape = if bpl >= 1 && bpl <= line_bytes as u64 {
        coalesce_ordered(addrs, access.shape_hint, bpl, line_bytes, mask, out)
    } else {
        let mut set = LaneSet::new();
        coalesce_divergent(addrs, 0, bpl, mask, out, &mut set);
        CoalesceShape::Divergent
    };
    // Every emission path must agree with the naive reference coalescer
    // (per-lane first/last line, global first-touch dedup). Checked on
    // every access in debug builds; see also the exhaustive battery in
    // tests/properties.rs.
    #[cfg(debug_assertions)]
    debug_assert_eq!(
        *out,
        reference_lines(addrs, bpl, mask),
        "coalescer shape path diverged from the reference model ({shape:?}, bpl={bpl}, line_bytes={line_bytes})",
    );
    shape
}

/// Ordered-regime emission: contiguous when every lane sits exactly `bpl`
/// after the previous one, sorted while addresses strictly increase, with a
/// one-way downgrade to [`coalesce_divergent`] on the first unsorted lane.
/// Requires `1 <= bpl <= line_bytes` so a lane spans at most two
/// consecutive lines.
fn coalesce_ordered(
    addrs: &[u64],
    hint: ShapeHint,
    bpl: u64,
    line_bytes: u32,
    mask: u64,
    out: &mut Vec<u64>,
) -> CoalesceShape {
    let Some(&first_addr) = addrs.first() else {
        return CoalesceShape::Contiguous;
    };
    // Contiguous fast path: one early-exit compare per lane with no
    // emission state (the loop vectorizes), then the covered byte range
    // [first_addr, last lane end) emitted as an arithmetic line sequence.
    // Scalar accesses are vacuously contiguous. A non-contiguous access
    // pays only the prefix that looked contiguous, which for the typical
    // strided or gathered shape is the first pair. A constructor-proven
    // [`ShapeHint`] settles the question without scanning at all — and
    // cannot change the classification, only skip re-deriving it, which
    // the asserts below pin in debug builds.
    let contiguous = match hint {
        ShapeHint::Contiguous => true,
        ShapeHint::Sorted => false,
        ShapeHint::Unknown => addrs.windows(2).all(|w| w[1] == w[0].wrapping_add(bpl)),
    };
    debug_assert_eq!(
        contiguous,
        addrs.windows(2).all(|w| w[1] == w[0].wrapping_add(bpl)),
        "shape hint {hint:?} contradicts the lane addresses",
    );
    if contiguous {
        let first = first_addr & mask;
        let last = (addrs[addrs.len() - 1] + bpl - 1) & mask;
        let mut line = first;
        loop {
            out.push(line);
            if line >= last {
                break;
            }
            line += line_bytes as u64;
        }
        return CoalesceShape::Contiguous;
    }
    // Sorted regime: emitted lines ascend strictly, so a candidate line is
    // new exactly when it exceeds the last emitted one (`last`, kept in a
    // register — the hot loop never re-reads the buffer). Since a lane's
    // end line `l` is never below its start line `f`, one threshold serves
    // both candidates.
    let f0 = first_addr & mask;
    out.push(f0);
    let mut last = f0;
    let l0 = (first_addr + bpl - 1) & mask;
    if l0 != f0 {
        out.push(l0);
        last = l0;
    }
    let mut prev = first_addr;
    for (i, &addr) in addrs.iter().enumerate().skip(1) {
        if addr <= prev {
            // Unsorted lane: seed the dedup set with everything emitted so
            // far (the prefix is exactly the reference output for lanes
            // 0..i) and finish in the divergent regime.
            let mut set = LaneSet::new();
            for &line in out.iter() {
                set.insert(line);
            }
            coalesce_divergent(addrs, i, bpl, mask, out, &mut set);
            return CoalesceShape::Divergent;
        }
        let f = addr & mask;
        if f > last {
            out.push(f);
            last = f;
        }
        let l = (addr + bpl - 1) & mask;
        if l > last {
            out.push(l);
            last = l;
        }
        prev = addr;
    }
    CoalesceShape::Sorted
}

/// Divergent-regime emission for `addrs[start..]`: per-lane first/last line
/// with global first-touch dedup through `set`, which must already contain
/// every line in `out`.
fn coalesce_divergent(
    addrs: &[u64],
    start: usize,
    bpl: u64,
    mask: u64,
    out: &mut Vec<u64>,
    set: &mut LaneSet,
) {
    for &addr in &addrs[start..] {
        let f = addr & mask;
        if set.insert(f) {
            out.push(f);
        }
        let l = (addr + bpl - 1) & mask;
        if l != f && set.insert(l) {
            out.push(l);
        }
    }
}

/// Naive reference coalescer: per-lane first/last line, quadratic global
/// first-touch dedup. The definition every emission path must match;
/// compiled only into debug builds, where [`coalesce_lines_into`] asserts
/// against it on every access.
#[cfg(debug_assertions)]
fn reference_lines(addrs: &[u64], bpl: u64, mask: u64) -> Vec<u64> {
    let mut out: Vec<u64> = Vec::new();
    let push = |out: &mut Vec<u64>, line: u64| {
        if !out.contains(&line) {
            out.push(line);
        }
    };
    for &addr in addrs {
        let first = addr & mask;
        push(&mut out, first);
        let last = (addr + bpl - 1) & mask;
        if last != first {
            push(&mut out, last);
        }
    }
    out
}

/// Number of transactions [`coalesce_lines`] would emit, counted without
/// materializing them. Dedup runs through a stack-local [`LaneSet`]; the
/// count is shape-independent (distinct lines touched), so a single pass
/// suffices for every regime.
pub fn coalesce_line_count(access: &MemAccess, line_bytes: u32) -> usize {
    debug_assert!(line_bytes.is_power_of_two());
    let mask = !(line_bytes as u64 - 1);
    let bpl = access.bytes_per_lane as u64;
    let mut set = LaneSet::new();
    let mut count = 0usize;
    for &addr in &access.addrs {
        let f = addr & mask;
        if set.insert(f) {
            count += 1;
        }
        let l = (addr + bpl - 1) & mask;
        if l != f && set.insert(l) {
            count += 1;
        }
    }
    debug_assert_eq!(
        count,
        coalesce_lines(access, line_bytes).len(),
        "allocation-free transaction count diverged from the emitting path",
    );
    count
}

/// The *coalescing degree* of an access: active lanes divided by the
/// number of transactions it generates. A fully coalesced 32-lane float
/// access against 128B lines has degree 32; a fully divergent one has
/// degree 1. The framework's probe (§4.4) uses the average degree to
/// distinguish streaming kernels from data-related ones. Counts through
/// the allocation-free [`coalesce_line_count`] path.
pub fn coalescing_degree(access: &MemAccess, line_bytes: u32) -> f64 {
    let txns = coalesce_line_count(access, line_bytes);
    if txns == 0 {
        return 0.0;
    }
    access.addrs.len() as f64 / txns as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::MemAccess;

    #[test]
    fn coalesced_float_warp() {
        let a = MemAccess::coalesced(0, 256, 32, 4);
        assert_eq!(coalesce_lines(&a, 128), vec![256]);
        assert_eq!(coalesce_lines(&a, 32), vec![256, 288, 320, 352]);
    }

    #[test]
    fn misaligned_access_spans_two_lines() {
        // Base 120, 32 lanes x 4B = bytes [120, 248): lines 0 and 128.
        let a = MemAccess::coalesced(0, 120, 32, 4);
        assert_eq!(coalesce_lines(&a, 128), vec![0, 128]);
    }

    #[test]
    fn straddling_word_touches_both_lines() {
        // One 8-byte word at address 28 crosses a 32B boundary.
        let a = MemAccess::scalar(0, 28, 8);
        assert_eq!(coalesce_lines(&a, 32), vec![0, 32]);
    }

    #[test]
    fn divergent_access_one_line_per_lane() {
        let a = MemAccess::strided(0, 0, 8, 1024, 4);
        assert_eq!(coalesce_lines(&a, 128).len(), 8);
    }

    #[test]
    fn duplicate_lane_addresses_merge() {
        let a = MemAccess::gather(0, vec![64, 64, 65, 66], 4);
        assert_eq!(coalesce_lines(&a, 32).len(), 1);
    }

    #[test]
    fn degree_reflects_efficiency() {
        let coalesced = MemAccess::coalesced(0, 0, 32, 4);
        let divergent = MemAccess::strided(0, 0, 32, 256, 4);
        assert!(coalescing_degree(&coalesced, 128) > 30.0);
        assert!((coalescing_degree(&divergent, 128) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn increasing_lanes_dedup_without_scanning() {
        // Sorted but non-contiguous: the increasing fast path must agree
        // with the general dedup (adjacent duplicates collapse).
        let a = MemAccess::gather(0, vec![0, 8, 40, 44, 100], 4);
        assert_eq!(coalesce_lines(&a, 32), vec![0, 32, 96]);
    }

    #[test]
    fn increasing_lanes_with_straddle_stay_sorted() {
        // Lanes 28 and 30 both straddle the 32B boundary: the sorted path
        // must dedup the straddle line in place (line 0 then 32, once).
        let a = MemAccess::gather(0, vec![28, 30], 8);
        assert_eq!(coalesce_lines(&a, 32), vec![0, 32]);
    }

    #[test]
    fn order_is_first_touch() {
        let a = MemAccess::gather(0, vec![300, 10, 200], 4);
        let lines = coalesce_lines(&a, 32);
        assert_eq!(lines, vec![288, 0, 192]);
    }

    #[test]
    fn shapes_classify_as_documented() {
        let mut out = Vec::new();
        let coalesced = MemAccess::coalesced(0, 0, 32, 4);
        assert_eq!(
            coalesce_lines_into(&coalesced, 128, &mut out),
            CoalesceShape::Contiguous
        );
        let scalar = MemAccess::scalar(0, 28, 8);
        assert_eq!(
            coalesce_lines_into(&scalar, 32, &mut out),
            CoalesceShape::Contiguous
        );
        let strided = MemAccess::strided(0, 0, 8, 1024, 4);
        assert_eq!(
            coalesce_lines_into(&strided, 128, &mut out),
            CoalesceShape::Sorted
        );
        let gather = MemAccess::gather(0, vec![300, 10, 200], 4);
        assert_eq!(
            coalesce_lines_into(&gather, 32, &mut out),
            CoalesceShape::Divergent
        );
        // Downgrade mid-access: a contiguous prefix that turns unsorted.
        let mixed = MemAccess::gather(0, vec![0, 4, 8, 4000, 100], 4);
        assert_eq!(
            coalesce_lines_into(&mixed, 32, &mut out),
            CoalesceShape::Divergent
        );
        assert_eq!(out, vec![0, 4000, 96]);
    }

    #[test]
    fn count_matches_emission_everywhere() {
        for access in [
            MemAccess::coalesced(0, 120, 32, 4),
            MemAccess::scalar(0, 28, 8),
            MemAccess::strided(0, 0, 32, 48, 8),
            MemAccess::gather(0, vec![300, 10, 200, 10, 28], 8),
            MemAccess::gather(0, vec![], 4),
        ] {
            for line_bytes in [32, 128] {
                assert_eq!(
                    coalesce_line_count(&access, line_bytes),
                    coalesce_lines(&access, line_bytes).len(),
                );
            }
        }
    }

    #[test]
    fn lane_set_dedups_and_spills() {
        let mut set = LaneSet::new();
        assert!(set.is_empty());
        // Far more distinct keys than the residency cap: the spill path
        // must keep exact membership semantics.
        for round in 0..2 {
            set.begin();
            for key in 0..200u64 {
                assert!(set.insert(key * 64), "round {round}: key {key} fresh");
            }
            for key in 0..200u64 {
                assert!(!set.insert(key * 64), "round {round}: key {key} dup");
            }
            assert_eq!(set.len(), 200);
        }
        // A generation bump empties the table without touching the slots.
        set.begin();
        assert!(set.is_empty());
        assert!(set.insert(0));
        assert!(!set.insert(0));
    }
}
