//! Regenerates every table and figure in sequence (the full artifact
//! run). Expect a few minutes in release mode.

use cta_clustering::ClusterError;
use std::process::Command;
use std::time::Instant;

fn main() -> Result<(), ClusterError> {
    cluster_bench::with_obs("all", run)
}

fn run() -> Result<(), ClusterError> {
    let t0 = Instant::now();
    let exe = std::env::current_exe()
        .map_err(|e| ClusterError::harness(format!("cannot resolve own executable path: {e}")))?;
    let exe_dir = exe
        .parent()
        .ok_or_else(|| ClusterError::harness("executable path has no parent directory"))?
        .to_path_buf();
    for bin in [
        "table1_platforms",
        "table2_benchmarks",
        "fig2_microbench",
        "fig3_reuse",
        "fig12_speedup",
        "fig13_cache",
    ] {
        println!("\n================ {bin} ================\n");
        let path = exe_dir.join(bin);
        let status = Command::new(&path).status().map_err(|e| {
            ClusterError::harness(format!("failed to launch {}: {e}", path.display()))
        })?;
        if !status.success() {
            return Err(ClusterError::harness(format!("{bin} exited with {status}")));
        }
    }
    // Each child bin reports its own busy-time speedup; the children all
    // read CLUSTER_BENCH_THREADS from this process's environment.
    println!(
        "\ntotal elapsed {:.2}s wall across all bins ({} worker thread{} per bin)",
        t0.elapsed().as_secs_f64(),
        cluster_bench::configured_threads(),
        if cluster_bench::configured_threads() == 1 {
            ""
        } else {
            "s"
        },
    );
    Ok(())
}
