//! BTR — B+tree range queries (Rodinia `b+tree`).
//!
//! Every CTA answers a batch of key lookups by walking the tree from the
//! root. The top levels are shared by *all* CTAs (accidental inter-CTA
//! locality from data organization); the leaf levels diverge per query —
//! the paper's data-related category.

use crate::common::{gather_words, mix_range, read_words, write_words};
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, KernelSpec, LaunchConfig, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "BTR",
    full_name: "b+tree",
    description: "B+tree operations",
    category: PaperCategory::Data,
    warps_per_cta: 8,
    partition: PartitionHint::X,
    opt_agents: [5, 8, 8, 8],
    regs: [22, 27, 29, 30],
    smem: 0,
    source: "Rodinia",
};

const TAG_NODES: u16 = 0;
const TAG_KEYS: u16 = 1;
const TAG_OUT: u16 = 2;

/// Words per tree node (16 keys + 17 child pointers, rounded).
const NODE_WORDS: u64 = 32;
/// Fanout used to derive child indices.
const FANOUT: u64 = 16;

/// The B+tree workload model.
#[derive(Debug, Clone)]
pub struct BTree {
    /// CTAs in the 1D grid (one query batch each).
    pub grid: u32,
    /// Tree depth walked per query.
    pub depth: u32,
    /// Deterministic seed shaping the key distribution.
    pub seed: u64,
    /// Registers per thread.
    pub regs: u32,
}

impl BTree {
    /// Default evaluation-scale instance for `arch`.
    pub fn for_arch(arch: ArchGen) -> Self {
        BTree {
            grid: 240,
            depth: 4,
            seed: 0xB7EE,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance.
    pub fn new(grid: u32, depth: u32, seed: u64) -> Self {
        BTree {
            grid,
            depth,
            seed,
            regs: INFO.regs[0],
        }
    }

    /// Word offset of node `i` at `level` (level-major layout).
    fn node_word(&self, level: u32, index: u64) -> u64 {
        // Level L starts after sum of FANOUT^l for l < L nodes.
        let mut base = 0u64;
        let mut width = 1u64;
        for _ in 0..level {
            base += width;
            width *= FANOUT;
        }
        (base + index % width) * NODE_WORDS
    }
}

impl KernelSpec for BTree {
    fn name(&self) -> String {
        format!("BTR(grid={},d{})", self.grid, self.depth)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(self.grid, 256u32)
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let mut prog = Program::new();
        // Load this warp's query keys.
        let key0 = (ctx.cta * 8 + warp as u64) * 32;
        prog.push(read_words(TAG_KEYS, key0, 32));
        // Walk the tree: each lane follows its own key's path, so each
        // level is a 32-lane gather over that level's nodes.
        for level in 0..self.depth {
            let addrs: Vec<u64> = (0..32u64)
                .map(|lane| {
                    let key = mix_range(self.seed ^ (key0 + lane), 1 << 30);
                    // The path of `key` at this level.
                    let index = key >> ((self.depth - 1 - level) * 4);
                    self.node_word(level, index) + key % FANOUT
                })
                .collect();
            prog.push(gather_words(TAG_NODES, &addrs));
            prog.push(Op::Compute(6));
        }
        prog.push(write_words(TAG_OUT, key0, 32));
        prog
    }
}

impl Workload for BTree {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        }
    }

    fn level_words(b: &BTree, cta: u64, op_index: usize) -> std::collections::BTreeSet<u64> {
        b.warp_program(&ctx(cta), 0)
            .iter()
            .filter_map(|op| match op {
                Op::Load(a) if a.tag == TAG_NODES => Some(a.addrs.clone()),
                _ => None,
            })
            .nth(op_index)
            .map(|v| v.into_iter().collect())
            .unwrap_or_default()
    }

    #[test]
    fn root_level_shared_by_all_ctas() {
        let b = BTree::new(8, 3, 5);
        let r0 = level_words(&b, 0, 0);
        let r1 = level_words(&b, 5, 0);
        assert!(r0.intersection(&r1).count() > 0, "root node words collide");
    }

    #[test]
    fn leaf_level_mostly_diverges() {
        let b = BTree::new(8, 4, 5);
        let l0 = level_words(&b, 0, 3);
        let l1 = level_words(&b, 5, 3);
        let shared = l0.intersection(&l1).count();
        assert!(
            shared < l0.len() / 2,
            "leaves should diverge, shared={shared}"
        );
    }

    #[test]
    fn node_layout_is_level_major() {
        let b = BTree::new(1, 3, 1);
        assert_eq!(b.node_word(0, 0), 0);
        assert_eq!(b.node_word(1, 0), NODE_WORDS);
        assert_eq!(b.node_word(2, 0), (1 + FANOUT) * NODE_WORDS);
    }
}
