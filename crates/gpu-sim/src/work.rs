//! Deterministic work-model counters: the quantities that predict the
//! simulator's own wall time, counted exactly.
//!
//! The measurement host carries ±15% wall-clock noise and ships no
//! perf/callgrind, so "did this PR slow the engine down?" cannot be gated
//! on seconds. These counters are the in-repo profiler instead: they tally
//! the algorithmic work the hot paths perform — which coalescer emission
//! path each access took, how many tag-compare chunks every cache probe
//! walked, how many ways each victim scan examined, how often an install
//! displaced a valid line, and how many heap operations the event loop
//! performed. They are pure observations (never fed back into simulated
//! behavior), deterministic for a given workload, and therefore pinnable
//! *exactly*: `sim_core --check` compares them counter-for-counter against
//! the committed `BENCH_sim_core.json`, a regression gate with zero noise
//! floor.

use crate::coalesce::CoalesceShape;

/// Work counters for one cache array (an L1 sector or an L2 bank),
/// accumulated on the engine's access paths. Test-only helpers
/// ([`crate::Cache::probe`]) do not count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheWork {
    /// Tag-compare chunks walked by probes (reads, writes and fill
    /// fallbacks). Narrow rows (assoc ≤ 4) count one chunk per probe;
    /// wide rows count one per four-way group examined, plus one if the
    /// remainder tail was entered.
    pub tag_chunks: u64,
    /// Ways examined by victim scans (installs). The branchless scan
    /// always ranks the full row, so this is `assoc` per install.
    pub victim_ways: u64,
    /// Installs that displaced a valid line (capacity/conflict misses —
    /// the per-level view of [`crate::CacheStats::evictions`]).
    pub set_conflicts: u64,
}

impl CacheWork {
    /// Merge another array's counters into this one.
    pub fn absorb(&mut self, other: &CacheWork) {
        self.tag_chunks += other.tag_chunks;
        self.victim_ways += other.victim_ways;
        self.set_conflicts += other.set_conflicts;
    }
}

/// The work model of one run: every counter the wall time of the
/// simulator is made of, exact and deterministic. Lives alongside
/// [`EngineMetrics`](crate::EngineMetrics)' event counters (and inside it
/// as the `work` field) rather than in `RunStats`, whose `Debug` repr the
/// golden differential tests hash.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkModel {
    /// Coalescer invocations (one per memory-instruction × level the
    /// engine coalesces; equals the sum of the three shape counters).
    pub coalesce_calls: u64,
    /// Accesses emitted on the contiguous fast path.
    pub coalesce_contiguous: u64,
    /// Accesses emitted on the sorted (strictly-increasing) path.
    pub coalesce_sorted: u64,
    /// Accesses that fell to the divergent dedup-set path.
    pub coalesce_divergent: u64,
    /// Work performed by the per-SM L1 sector arrays.
    pub l1: CacheWork,
    /// Work performed by the L2 banks.
    pub l2: CacheWork,
    /// Pushes onto per-SM ready/pending event heaps.
    pub ready_heap_pushes: u64,
    /// Pushes onto the global SM wake heap.
    pub sm_heap_pushes: u64,
}

impl WorkModel {
    /// Counts one coalescer invocation on the path `shape` names.
    #[inline]
    pub fn note_shape(&mut self, shape: CoalesceShape) {
        self.coalesce_calls += 1;
        match shape {
            CoalesceShape::Contiguous => self.coalesce_contiguous += 1,
            CoalesceShape::Sorted => self.coalesce_sorted += 1,
            CoalesceShape::Divergent => self.coalesce_divergent += 1,
        }
    }

    /// Merge another run's work model into this one.
    pub fn absorb(&mut self, other: &WorkModel) {
        self.coalesce_calls += other.coalesce_calls;
        self.coalesce_contiguous += other.coalesce_contiguous;
        self.coalesce_sorted += other.coalesce_sorted;
        self.coalesce_divergent += other.coalesce_divergent;
        self.l1.absorb(&other.l1);
        self.l2.absorb(&other.l2);
        self.ready_heap_pushes += other.ready_heap_pushes;
        self.sm_heap_pushes += other.sm_heap_pushes;
    }

    /// Emits the work counters onto a recorder under `work/…` keys in the
    /// `cta-obs/v1` schema, mirroring `EngineMetrics::record_obs`.
    pub fn record_obs(&self, obs: &cta_obs::Obs, scope: &str) {
        obs.counter("work/coalesce_calls", scope, self.coalesce_calls);
        obs.counter("work/coalesce_contiguous", scope, self.coalesce_contiguous);
        obs.counter("work/coalesce_sorted", scope, self.coalesce_sorted);
        obs.counter("work/coalesce_divergent", scope, self.coalesce_divergent);
        obs.counter("work/l1_tag_chunks", scope, self.l1.tag_chunks);
        obs.counter("work/l1_victim_ways", scope, self.l1.victim_ways);
        obs.counter("work/l1_set_conflicts", scope, self.l1.set_conflicts);
        obs.counter("work/l2_tag_chunks", scope, self.l2.tag_chunks);
        obs.counter("work/l2_victim_ways", scope, self.l2.victim_ways);
        obs.counter("work/l2_set_conflicts", scope, self.l2.set_conflicts);
        obs.counter("work/ready_heap_pushes", scope, self.ready_heap_pushes);
        obs.counter("work/sm_heap_pushes", scope, self.sm_heap_pushes);
    }

    /// Checks the model's internal conservation laws, returning the first
    /// violated one as `Err(description)`.
    ///
    /// # Errors
    ///
    /// A static description of the violated law — which would indicate an
    /// instrumentation bug (a shape not counted, a victim scan that never
    /// examined a way).
    pub fn check_conservation(&self) -> Result<(), &'static str> {
        let shapes = self.coalesce_contiguous + self.coalesce_sorted + self.coalesce_divergent;
        if shapes != self.coalesce_calls {
            return Err("coalesce shape counts do not sum to coalesce_calls");
        }
        if self.l1.set_conflicts > self.l1.victim_ways {
            return Err("l1 set_conflicts exceed victim ways examined");
        }
        if self.l2.set_conflicts > self.l2.victim_ways {
            return Err("l2 set_conflicts exceed victim ways examined");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_sum_to_calls() {
        let mut w = WorkModel::default();
        w.note_shape(CoalesceShape::Contiguous);
        w.note_shape(CoalesceShape::Contiguous);
        w.note_shape(CoalesceShape::Sorted);
        w.note_shape(CoalesceShape::Divergent);
        assert_eq!(w.coalesce_calls, 4);
        assert_eq!(w.check_conservation(), Ok(()));
        let mut total = WorkModel::default();
        total.absorb(&w);
        total.absorb(&w);
        assert_eq!(total.coalesce_contiguous, 4);
        assert_eq!(total.check_conservation(), Ok(()));
    }

    #[test]
    fn conservation_catches_miscounts() {
        let w = WorkModel {
            coalesce_calls: 2,
            coalesce_contiguous: 1,
            ..WorkModel::default()
        };
        assert!(w.check_conservation().is_err());
        let w = WorkModel {
            l2: CacheWork {
                set_conflicts: 3,
                victim_ways: 2,
                ..CacheWork::default()
            },
            ..WorkModel::default()
        };
        assert!(w.check_conservation().is_err());
    }
}
