//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand` API it actually uses: a seedable
//! deterministic RNG (`rngs::StdRng`), `Rng::gen_range` over half-open
//! integer ranges, and `Rng::gen_bool`. The generator is SplitMix64 —
//! statistically solid for simulation-scheduler perturbation, and fully
//! deterministic across platforms, which is all the simulator requires.
//! It does **not** reproduce upstream `StdRng`'s exact stream; the repo
//! has no golden outputs tied to upstream, only to its own seeds.

#![warn(missing_docs)]

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen_range` can sample uniformly from a `Range`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)` using `word`.
    fn sample_from(word: u64, range: &Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from(word: u64, range: &Range<Self>) -> Self {
                let span = (range.end as u128).wrapping_sub(range.start as u128);
                debug_assert!(span > 0, "cannot sample an empty range");
                range.start.wrapping_add((word as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

/// User-facing random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample an empty range");
        T::sample_from(self.next_u64(), &range)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..16).map(|_| r.gen_range(0..1000u64)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20usize);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(3);
        let _ = r.gen_range(5..5u32);
    }
}
