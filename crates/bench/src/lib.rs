//! # cluster-bench
//!
//! The benchmark harness that regenerates every table and figure of
//! *"Locality-Aware CTA Clustering for Modern GPUs"* (ASPLOS 2017):
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Table 1 (platforms) | [`tables`] | `table1_platforms` |
//! | Table 2 (benchmarks) | [`tables`] | `table2_benchmarks` |
//! | Figure 2 (microbenchmark) | [`fig2`] | `fig2_microbench` |
//! | Figure 3 (reuse shares) | [`fig3`] | `fig3_reuse` |
//! | Figure 12 (speedups + occupancy) | [`evaluation`] | `fig12_speedup` |
//! | Figure 13 (L2 transactions + L1 hit rate) | [`evaluation`] | `fig13_cache` |
//!
//! `cargo run --release -p cluster-bench --bin all` regenerates
//! everything in sequence.

#![warn(missing_docs)]

pub mod evaluation;
pub mod fig2;
pub mod fig3;
pub mod matrix;
pub mod par;
pub mod report;
pub mod runner;
pub mod sweep;
pub mod tables;

pub use evaluation::{evaluate_all, evaluate_arch, ArchEvaluation, Panel};
pub use matrix::{drive_matrix, AtaSummary, MatrixTotals};
pub use par::{
    configured_threads, evaluate_all_par, evaluate_apps_par, evaluate_arch_par, evaluate_matrix,
    tune_allocator, with_obs, RunClock,
};
pub use runner::{evaluate_app, AppEvaluation, AppPlan, SharedKernel, SimRequest, Variant};
